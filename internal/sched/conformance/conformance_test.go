package conformance

import (
	"bytes"
	"math"
	"testing"

	"mediaworm/internal/police"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// The contract battery. Every registered discipline runs every applicable
// property; registering a new Kind in sched.kinds is all it takes to be
// drafted. Property applicability is explicit: rate-agnostic disciplines
// (FIFO, plain round-robin) are checked for equal sharing instead of
// weighted sharing, and strict-priority isolation binds only the
// disciplines that promise it (SP+WRR by tier, Virtual Clock by timestamp).

// TestRegistryComplete pins the battery's coverage: all seven disciplines,
// in registry order.
func TestRegistryComplete(t *testing.T) {
	want := []string{"fifo", "round-robin", "virtual-clock", "wrr", "drr", "wf2q", "sp+wrr"}
	got := sched.Kinds()
	if len(got) != len(want) {
		t.Fatalf("registry has %d kinds, battery expects %d", len(got), len(want))
	}
	for i, k := range got {
		if k.String() != want[i] {
			t.Fatalf("registry[%d] = %v, want %s", i, k, want[i])
		}
	}
}

// weighted reports whether k differentiates service by Params weights (or,
// for Virtual Clock, by the rate encoded in its timestamps).
func weighted(k sched.Kind) bool {
	switch k {
	case sched.WRR, sched.DRR, sched.WF2Q, sched.SPWRR, sched.VirtualClock:
		return true
	}
	return false
}

// isolating reports whether k promises strict-priority isolation of the
// NC class.
func isolating(k sched.Kind) bool {
	return k == sched.SPWRR || k == sched.VirtualClock
}

func TestConformanceBattery(t *testing.T) {
	for _, k := range sched.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Run("work-conservation", func(t *testing.T) { checkWorkConservation(t, k) })
			t.Run("seed-determinism", func(t *testing.T) { checkSeedDeterminism(t, k) })
			t.Run("proportional-sharing", func(t *testing.T) { checkProportionalSharing(t, k) })
			t.Run("starvation-bound", func(t *testing.T) { checkStarvationBound(t, k) })
			if isolating(k) {
				t.Run("strict-priority-isolation", func(t *testing.T) { checkIsolation(t, k) })
				t.Run("lowest-tier-starvation", func(t *testing.T) { checkLowTierProgress(t, k) })
			}
		})
	}
}

// checkWorkConservation: with the point oversubscribed, every cycle has a
// backlogged candidate and the arbiter must grant a valid one — the link
// never idles and no pick escapes the field.
func checkWorkConservation(t *testing.T, k sched.Kind) {
	cfg := Config{
		Kind: k, VCs: 4, Cycles: 5000, Seed: 11,
		Loads: []float64{0.7, 0.7, 0.7, 0.7},
	}
	res := Run(cfg)
	if res.InvalidPicks != 0 {
		t.Fatalf("%d picks outside the candidate field", res.InvalidPicks)
	}
	// 2.8 flits/cycle offered against 1 served: after a short transient the
	// point is continuously backlogged, so grants ≈ cycles.
	if len(res.Picks) < cfg.Cycles*9/10 {
		t.Fatalf("only %d grants in %d backlogged cycles: the point idled", len(res.Picks), cfg.Cycles)
	}
}

// checkSeedDeterminism: same seed ⇒ byte-identical pick sequence from a
// fresh arbiter. This subsumes deterministic tie-breaking: the stochastic
// traffic is full of exact ties, and any nondeterministic break diverges
// the byte streams.
func checkSeedDeterminism(t *testing.T, k sched.Kind) {
	cfg := Config{
		Kind: k, VCs: 4, Cycles: 4000, Seed: 23,
		Weights: []int{4, 2, 1, 1},
		Tiers:   []int{0, 0, 1, 1},
		Quantum: 2,
		Loads:   []float64{0.6, 0.6, 0.6, 0.6},
	}
	a, b := Run(cfg), Run(cfg)
	if !bytes.Equal(a.Picks, b.Picks) {
		t.Fatal("pick sequences diverged across identical seeded runs")
	}
	cfg.Seed++
	c := Run(cfg)
	if bytes.Equal(a.Picks, c.Picks) {
		t.Fatal("different seeds produced identical traffic — the battery is not exercising randomness")
	}
}

// checkProportionalSharing: under 2× oversubscription, long-run service
// shares must track the provisioned weights within 5% relative error. The
// rate-agnostic disciplines are held to equal sharing at equal weights.
func checkProportionalSharing(t *testing.T, k sched.Kind) {
	weights := []int{4, 2, 1, 1}
	if !weighted(k) {
		weights = []int{1, 1, 1, 1}
	}
	sum := 0
	for _, w := range weights {
		sum += w
	}
	loads := make([]float64, len(weights))
	for v, w := range weights {
		loads[v] = 2 * float64(w) / float64(sum) // 2× each VC's entitlement
	}
	cfg := Config{
		Kind: k, VCs: len(weights), Cycles: 20000, Seed: 31,
		Weights: weights, Quantum: 2, Loads: loads,
	}
	res := Run(cfg)
	shares := Shares(res.Served)
	for v, w := range weights {
		want := float64(w) / float64(sum)
		if relerr := math.Abs(shares[v]-want) / want; relerr > 0.05 {
			t.Errorf("VC %d (weight %d): share %.4f, want %.4f ±5%% (relative error %.1f%%)",
				v, w, shares[v], want, 100*relerr)
		}
	}
}

// checkStarvationBound: under persistent full backlog at uniform weights,
// no VC waits longer than a full rotation's worth of grants (with DRR's
// quantum factored in, plus 2× slack for rotation phase).
func checkStarvationBound(t *testing.T, k sched.Kind) {
	const vcs, quantum = 4, 2
	cfg := Config{
		Kind: k, VCs: vcs, Cycles: 4000, Seed: 43,
		Quantum: quantum,
		Loads:   []float64{1, 1, 1, 1},
	}
	res := Run(cfg)
	bound := vcs * quantum * 2
	for v, gap := range MaxGap(res.Picks, vcs) {
		if gap > bound {
			t.Errorf("VC %d starved for %d consecutive grants (bound %d)", v, gap, bound)
		}
		if res.Served[v] == 0 {
			t.Errorf("VC %d never served under full backlog", v)
		}
	}
}

// checkIsolation: NC-class candidates (tier 0 / finite timestamp) must
// never lose a grant to best-effort — zero tolerance, the DP-1.10-style
// SP gate.
func checkIsolation(t *testing.T, k sched.Kind) {
	cfg := Config{
		Kind: k, VCs: 4, Cycles: 10000, Seed: 57,
		Tiers: []int{0, 0, 1, 1},
		Loads: []float64{0.3, 0.3, 0.9, 0.9},
	}
	res := Run(cfg)
	if res.NCBehindBE != 0 {
		t.Fatalf("best-effort won %d grants while NC-class flits waited", res.NCBehindBE)
	}
	if res.Served[2]+res.Served[3] == 0 {
		t.Fatal("best-effort tier never served despite NC slack — not work conserving")
	}
}

// checkLowTierProgress: when the high tier is not saturating, the lowest
// tier must absorb most of the leftover bandwidth — strict priority bounds
// starvation by the high tier's load, not by fiat.
func checkLowTierProgress(t *testing.T, k sched.Kind) {
	cfg := Config{
		Kind: k, VCs: 4, Cycles: 10000, Seed: 61,
		Tiers: []int{0, 0, 1, 1},
		Loads: []float64{0.25, 0.25, 1, 1},
	}
	res := Run(cfg)
	shares := Shares(res.Served)
	if low := shares[2] + shares[3]; low < 0.35 {
		t.Fatalf("lowest tier got %.3f of grants; leftover bandwidth (~0.5) must reach it", low)
	}
}

// TestDropPrecedenceChain runs the meter→dropper chain the NI uses and
// checks drop-precedence ordering end to end: at every congestion level,
// violating (red) traffic is dropped at least as hard as exceeding
// (yellow), and yellow at least as hard as conforming (green).
func TestDropPrecedenceChain(t *testing.T) {
	profiles := [police.NumColors]police.DropProfile{
		police.Green:  {MinFlits: 60, MaxFlits: 120, MaxProb: 0.1},
		police.Yellow: {MinFlits: 30, MaxFlits: 80, MaxProb: 0.5},
		police.Red:    {MinFlits: 10, MaxFlits: 40, MaxProb: 1.0},
	}
	for _, backlog := range []int{15, 35, 70, 130} {
		var rate [police.NumColors]float64
		for c := 0; c < police.NumColors; c++ {
			d := police.NewDropper(police.DropperConfig{Profiles: profiles, WeightExp: 1},
				rng.NewStream(3, "conformance-police").Split(uint64(backlog)))
			for i := 0; i < 32; i++ {
				d.Drop(police.Color(c), backlog)
			}
			drops := 0
			const trials = 3000
			for i := 0; i < trials; i++ {
				if d.Drop(police.Color(c), backlog) {
					drops++
				}
			}
			rate[c] = float64(drops) / trials
		}
		if rate[police.Red] < rate[police.Yellow] || rate[police.Yellow] < rate[police.Green] {
			t.Fatalf("backlog %d: drop rates g=%.3f y=%.3f r=%.3f violate precedence ordering",
				backlog, rate[police.Green], rate[police.Yellow], rate[police.Red])
		}
	}
	// The full chain: a meter coloring an oversubscribed flow feeds the
	// dropper; dropped fraction of red-colored frames must dominate green's.
	src := rng.NewStream(5, "conformance-police")
	p := police.NewPolicer(police.MeterConfig{CIR: 1000, CBS: 20, EBS: 10},
		police.DropperConfig{Profiles: profiles, WeightExp: 2}, src)
	var offered, dropped [police.NumColors]int
	for i := 0; i < 5000; i++ {
		// 3 µs spacing: ~333k frames/s against a CIR of 1000 flits/s, so the
		// meter sees a heavily oversubscribed flow with periodic refill.
		now := sim.Time(i) * 3000
		color, drop := p.Admit(now, 1, 50)
		offered[color]++
		if drop {
			dropped[color]++
		}
	}
	if offered[police.Red] == 0 || offered[police.Green] == 0 {
		t.Fatalf("chain did not exercise both extremes: offered %v", offered)
	}
	gRate := float64(dropped[police.Green]) / float64(offered[police.Green])
	rRate := float64(dropped[police.Red]) / float64(offered[police.Red])
	if rRate <= gRate {
		t.Fatalf("red drop rate %.3f not above green %.3f through the chain", rRate, gRate)
	}
}
