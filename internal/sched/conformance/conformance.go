// Package conformance is the scheduler contract battery: a synthetic
// contention point that drives any registered sched.Arbiter with seeded
// stochastic traffic and measures the properties a QoS discipline must
// uphold — weight-proportional sharing under oversubscription,
// strict-priority isolation, starvation bounds, work conservation, and
// deterministic tie-breaking. The test file in this package registers the
// battery over every Kind in sched.Kinds(), so a new discipline gets the
// full contract check the moment it is registered — the simulator
// equivalent of a mixed SP/WRR hardware test plan.
package conformance

import (
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
)

// Config describes one synthetic contention-point run.
type Config struct {
	Kind sched.Kind
	// VCs is the number of competing virtual channels.
	VCs int
	// Weights and Tiers parameterize the weighted disciplines, per VC
	// (defaults: weight 1, tier 0). Under VirtualClock, tier 0 VCs are
	// stamped with Vtick inversely proportional to weight and tier ≥ 1 VCs
	// are best-effort (Vtick = ∞).
	Weights []int
	Tiers   []int
	// Quantum is DRR's base credit (default 1).
	Quantum int
	// Loads[v] is VC v's offered load in flits per cycle (enqueue
	// probability). Sum > 1 oversubscribes the point.
	Loads []float64
	// Cycles is the number of service opportunities to simulate.
	Cycles int
	// Seed drives the arrival process (and nothing else).
	Seed uint64
}

// Result is the measured outcome of one run.
type Result struct {
	// Served[v] counts flits granted to VC v.
	Served []int
	// Picks is the winner VC id of each grant, in order — one byte per
	// grant, so two runs compare byte-for-byte.
	Picks []byte
	// InvalidPicks counts arbiter decisions outside the candidate field —
	// any nonzero value is a broken arbiter.
	InvalidPicks int
	// NCBehindBE counts grants where a best-effort candidate (tier ≥ 1) won
	// while an NC-class candidate (tier 0) was waiting — strict-priority
	// isolation demands zero.
	NCBehindBE int
	// Backlogged[v] counts cycles VC v spent with at least one flit queued.
	Backlogged []int
}

type flit struct {
	enq sim.Time
	seq uint64
	ts  sim.Time
}

// vtickBase is the per-flit virtual-clock increment of a weight-1 VC; it is
// divisible by every small weight so Vtick = vtickBase/weight stays exact.
const vtickBase = 2520

// Run simulates cfg.Cycles service opportunities at one contention point:
// each cycle every VC enqueues a flit with probability Loads[v], then the
// arbiter picks among the backlogged VCs and the winner dequeues.
func Run(cfg Config) Result {
	p := sched.Params{VCs: cfg.VCs, Weights: cfg.Weights, Tiers: cfg.Tiers, Quantum: cfg.Quantum}
	arb := sched.NewArbiter(cfg.Kind, p)
	src := rng.NewStream(cfg.Seed, "conformance")

	weight := func(v int) int {
		if v < len(cfg.Weights) && cfg.Weights[v] > 0 {
			return cfg.Weights[v]
		}
		return 1
	}
	tier := func(v int) int {
		if v < len(cfg.Tiers) && cfg.Tiers[v] > 0 {
			return cfg.Tiers[v]
		}
		return 0
	}
	load := func(v int) float64 {
		if v < len(cfg.Loads) {
			return cfg.Loads[v]
		}
		return 0
	}

	queues := make([][]flit, cfg.VCs)
	heads := make([]int, cfg.VCs)
	clocks := make([]sched.VClock, cfg.VCs)
	res := Result{
		Served:     make([]int, cfg.VCs),
		Backlogged: make([]int, cfg.VCs),
	}
	cands := make([]sched.Candidate, 0, cfg.VCs)
	var seq uint64

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		now := sim.Time(cycle)
		for v := 0; v < cfg.VCs; v++ {
			if src.Float64() >= load(v) {
				continue
			}
			ts := sim.Forever
			if cfg.Kind == sched.VirtualClock && tier(v) == 0 {
				ts = clocks[v].Stamp(now, sim.Time(vtickBase/weight(v)))
			}
			queues[v] = append(queues[v], flit{enq: now, seq: seq, ts: ts})
			seq++
		}

		cands = cands[:0]
		ncWaiting := false
		for v := 0; v < cfg.VCs; v++ {
			if heads[v] >= len(queues[v]) {
				continue
			}
			res.Backlogged[v]++
			f := queues[v][heads[v]]
			cands = append(cands, sched.Candidate{VC: v, TS: f.ts, Enq: f.enq, Seq: f.seq})
			if nc(cfg.Kind, tier(v), f.ts) {
				ncWaiting = true
			}
		}
		if len(cands) == 0 {
			continue
		}

		w := arb.Pick(cands)
		if w < 0 || w >= len(cands) {
			res.InvalidPicks++
			continue
		}
		win := cands[w]
		if ncWaiting && !nc(cfg.Kind, tier(win.VC), win.TS) {
			res.NCBehindBE++
		}
		res.Served[win.VC]++
		res.Picks = append(res.Picks, byte(win.VC))
		heads[win.VC]++
		if heads[win.VC] == len(queues[win.VC]) {
			queues[win.VC] = queues[win.VC][:0]
			heads[win.VC] = 0
		}
	}
	return res
}

// nc reports whether a candidate on the given tier counts as NC-class
// (network-control / real-time) for the isolation property: tier 0 under
// the hierarchical disciplines, a finite timestamp under Virtual Clock.
func nc(k sched.Kind, tier int, ts sim.Time) bool {
	if k == sched.VirtualClock {
		return ts != sim.Forever
	}
	return tier == 0
}

// MaxGap returns, per VC, the longest run of consecutive grants between two
// services of that VC (counting from the first grant it wins to the run's
// end) — the starvation measure under persistent backlog.
func MaxGap(picks []byte, vcs int) []int {
	last := make([]int, vcs)
	gap := make([]int, vcs)
	for v := range last {
		last[v] = -1
	}
	for i, b := range picks {
		v := int(b)
		if v >= vcs {
			continue
		}
		if last[v] >= 0 && i-last[v] > gap[v] {
			gap[v] = i - last[v]
		}
		last[v] = i
	}
	return gap
}

// Shares converts served counts to fractions of all grants.
func Shares(served []int) []float64 {
	total := 0
	for _, s := range served {
		total += s
	}
	out := make([]float64, len(served))
	if total == 0 {
		return out
	}
	for v, s := range served {
		out[v] = float64(s) / float64(total)
	}
	return out
}
