// Package sched implements the resource-scheduling disciplines that multiplex
// router bandwidth among virtual channels: the conventional rate-agnostic
// FIFO and round-robin schedulers, and the paper's contribution — the
// Virtual Clock rate-based scheduler (Zhang, ACM TOCS 1991) that turns a
// vanilla wormhole router into the MediaWorm router (§3.3).
//
// A contention point (crossbar input multiplexer, output VC multiplexer, or
// the source NI's link multiplexer) presents the arbiter with one Candidate
// per virtual channel that has a flit ready; the arbiter picks the winner.
package sched

import (
	"fmt"
	"strings"

	"mediaworm/internal/sim"
)

// Kind selects a scheduling discipline.
type Kind uint8

const (
	// FIFO serves flits in arrival order at the contention point — the
	// scheduler of a conventional wormhole router and the paper's baseline.
	FIFO Kind = iota
	// RoundRobin cycles over virtual channels, one flit per grant.
	RoundRobin
	// VirtualClock serves the flit with the lowest virtual-clock timestamp,
	// giving each message bandwidth proportional to its request (1/Vtick).
	// Best-effort flits (timestamp sim.Forever) are served FIFO among
	// themselves and only when no real-time flit is ready.
	VirtualClock
	// WRR is weighted round-robin: each virtual channel holds the grant for
	// Params.Weights[vc] consecutive flits per rotation, forfeiting the rest
	// of its turn when it runs dry (work conserving).
	WRR
	// DRR is deficit round-robin (Shreedhar–Varghese): each visited VC is
	// credited Quantum·weight flits of deficit and serves while the deficit
	// lasts; leftover deficit carries to the next rotation, so long-run
	// bandwidth is weight-proportional regardless of visit granularity.
	DRR
	// WF2Q is worst-case-fair weighted fair queueing (WF²Q+): a virtual-time
	// scheduler that serves, among the eligible VCs (start tag ≤ virtual
	// time), the one with the smallest finish tag. It tracks GPS within one
	// flit — the tightest fairness of the zoo.
	WF2Q
	// SPWRR is the hierarchical strict-priority + WRR hybrid of production
	// QoS fabrics: VCs are grouped into priority tiers (Params.Tiers), the
	// lowest-numbered tier with a ready flit always wins, and WRR arbitrates
	// within the winning tier.
	SPWRR
)

// numKinds sizes the discipline registry. It is an int, not a Kind, so it
// stays out of the enum for exhaustiveness analysis.
const numKinds = int(SPWRR) + 1

// kinds is the discipline registry, in Kind order. Kinds() exposes it and
// the conformance harness iterates it, so a new Kind that is not added here
// escapes the contract battery — the registry-completeness test fails first.
var kinds = [numKinds]Kind{FIFO, RoundRobin, VirtualClock, WRR, DRR, WF2Q, SPWRR}

// Kinds returns every registered discipline, in Kind order. The conformance
// harness runs its whole property battery over this slice, so registering a
// kind here is what buys it the contract check.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	copy(out, kinds[:])
	return out
}

// String implements fmt.Stringer. Every spelling it returns round-trips
// through ParseKind (tested exhaustively over Kinds()).
func (k Kind) String() string {
	switch k {
	case FIFO:
		return "fifo"
	case RoundRobin:
		return "round-robin"
	case VirtualClock:
		return "virtual-clock"
	case WRR:
		return "wrr"
	case DRR:
		return "drr"
	case WF2Q:
		return "wf2q"
	case SPWRR:
		return "sp+wrr"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a policy name to a Kind. Accepted spellings are exact:
// "fifo"/"FIFO", "round-robin"/"rr", "virtual-clock"/"vc"/"virtualclock",
// "wrr", "drr", "wf2q"/"wf2q+"/"wfq", and "sp+wrr"/"sp-wrr"/"spwrr".
// Near-miss junk — stray whitespace or mixed case like "Fifo " — is rejected
// with an error that names the canonical spelling instead of an opaque
// "unknown policy".
func ParseKind(s string) (Kind, error) {
	switch s {
	case "fifo", "FIFO":
		return FIFO, nil
	case "round-robin", "rr":
		return RoundRobin, nil
	case "virtual-clock", "vc", "virtualclock":
		return VirtualClock, nil
	case "wrr":
		return WRR, nil
	case "drr":
		return DRR, nil
	case "wf2q", "wf2q+", "wfq":
		return WF2Q, nil
	case "sp+wrr", "sp-wrr", "spwrr":
		return SPWRR, nil
	}
	if norm := strings.ToLower(strings.TrimSpace(s)); norm != s {
		if k, err := ParseKind(norm); err == nil {
			return 0, fmt.Errorf("sched: unknown policy %q (policy names are lowercase without surrounding space: did you mean %q?)", s, k)
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q (valid: fifo, round-robin, rr, virtual-clock, vc, virtualclock, wrr, drr, wf2q, sp+wrr)", s)
}

// Candidate describes one virtual channel competing at a contention point.
type Candidate struct {
	// VC identifies the channel (an index meaningful to the caller).
	VC int
	// TS is the head flit's Virtual Clock timestamp; sim.Forever for
	// best-effort traffic.
	TS sim.Time
	// Enq is the head flit's arrival instant at this point (the FIFO key
	// and the best-effort tie-break).
	Enq sim.Time
	// Seq is a strictly increasing arrival sequence number used to break
	// exact ties deterministically.
	Seq uint64
}

// Arbiter picks one winner among candidates. Implementations may keep state
// (round-robin position), so use one Arbiter instance per contention point.
// Pick returns the index into cands of the winner; cands must be non-empty.
type Arbiter interface {
	Pick(cands []Candidate) int
	Kind() Kind
}

// maxVCID bounds the VC identifier space an arbiter accepts (the per-VC
// presence bitmaps are two 64-bit words). core caps VCs at 127 and the NI at
// 64, so every contention point fits.
const maxVCID = 128

// Params configures the weighted disciplines (WRR, DRR, WF²Q+, SP+WRR); the
// classic three ignore it. The zero value means "every VC has weight 1 and
// tier 0", under which the weighted kinds degenerate to fair round-robin
// shapes — still valid arbiters, just without differentiation.
type Params struct {
	// VCs presizes the per-VC state arrays so Pick never allocates. 0 is
	// allowed: state then grows lazily the first time a VC id is seen (an
	// amortized one-time allocation, annotated on the hot path).
	VCs int
	// Weights[v] is VC v's scheduling weight. Out-of-range or non-positive
	// entries count as 1.
	Weights []int
	// Tiers[v] is VC v's strict-priority tier for SP+WRR; lower tiers are
	// served first. Out-of-range entries count as tier 0 (highest).
	Tiers []int
	// Quantum is DRR's base deficit credit in flits per weight unit per
	// rotation. Non-positive means 1.
	Quantum int
}

// weight returns VC v's effective weight.
func (p *Params) weight(v int) int {
	if v >= 0 && v < len(p.Weights) && p.Weights[v] > 0 {
		return p.Weights[v]
	}
	return 1
}

// tier returns VC v's effective strict-priority tier.
func (p *Params) tier(v int) int {
	if v >= 0 && v < len(p.Tiers) && p.Tiers[v] > 0 {
		return p.Tiers[v]
	}
	return 0
}

// quantum returns the effective DRR quantum.
func (p *Params) quantum() int {
	if p.Quantum > 0 {
		return p.Quantum
	}
	return 1
}

// New returns a fresh arbiter of the given kind with default parameters
// (every VC weight 1, tier 0) — the historical constructor, still right for
// the three classic disciplines. Weighted contention points should use
// NewArbiter with explicit Params.
func New(k Kind) Arbiter {
	return NewArbiter(k, Params{})
}

// NewArbiter returns a fresh arbiter of the given kind, parameterized with
// per-VC weights and tiers. Use one instance per contention point.
func NewArbiter(k Kind, p Params) Arbiter {
	switch k {
	case FIFO:
		return &fifoArbiter{}
	case RoundRobin:
		return &rrArbiter{last: -1}
	case VirtualClock:
		return &vcArbiter{}
	case WRR:
		return newWRR(p)
	case DRR:
		return newDRR(p)
	case WF2Q:
		return newWF2Q(p)
	case SPWRR:
		return newSPWRR(p)
	default:
		panic(fmt.Sprintf("sched: unknown kind %d", k))
	}
}

// PickObserver is an instrumentation hook: it receives each arbitration's
// winning candidate and the field size. The observability layer supplies
// one per contention point via Observed.
type PickObserver func(winner Candidate, candidates int)

// Observed wraps an arbiter so every Pick is reported to fn. The wrapper
// is transparent: the inner arbiter keeps its state and Kind.
func Observed(a Arbiter, fn PickObserver) Arbiter {
	if fn == nil {
		return a
	}
	return &observedArbiter{inner: a, fn: fn}
}

type observedArbiter struct {
	inner Arbiter
	fn    PickObserver
}

func (o *observedArbiter) Kind() Kind { return o.inner.Kind() }

func (o *observedArbiter) Pick(cands []Candidate) int {
	w := o.inner.Pick(cands)
	o.fn(cands[w], len(cands))
	return w
}

type fifoArbiter struct{}

func (*fifoArbiter) Kind() Kind { return FIFO }

func (*fifoArbiter) Pick(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if earlier(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}

// earlier orders by (Enq, Seq).
func earlier(a, b Candidate) bool {
	if a.Enq != b.Enq {
		return a.Enq < b.Enq
	}
	return a.Seq < b.Seq
}

type rrArbiter struct {
	last int // VC id of the previous winner
}

func (*rrArbiter) Kind() Kind { return RoundRobin }

// Pick grants the candidate with the smallest VC id strictly greater than the
// previous winner's, wrapping around.
func (r *rrArbiter) Pick(cands []Candidate) int {
	best := -1
	wrap := -1
	for i, c := range cands {
		if c.VC > r.last && (best == -1 || c.VC < cands[best].VC) {
			best = i
		}
		if wrap == -1 || c.VC < cands[wrap].VC {
			wrap = i
		}
	}
	if best == -1 {
		best = wrap
	}
	r.last = cands[best].VC
	return best
}

type vcArbiter struct{}

func (*vcArbiter) Kind() Kind { return VirtualClock }

// Pick serves the lowest finite timestamp; among best-effort-only candidates
// it falls back to FIFO order, implementing Vtick = ∞ (§3.3: best-effort has
// maximum slack).
func (*vcArbiter) Pick(cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if c.TS == sim.Forever {
			continue
		}
		if best == -1 || less(c, cands[best]) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	// All best-effort: arrival order.
	best = 0
	for i := 1; i < len(cands); i++ {
		if earlier(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}

// less orders by (TS, Enq, Seq).
func less(a, b Candidate) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return earlier(a, b)
}

// Better reports whether a should be served before b under policy k,
// as a stateless pairwise comparison. RoundRobin has no meaningful
// pairwise order and falls back to arrival order.
func Better(k Kind, a, b Candidate) bool {
	if k == VirtualClock {
		return less(a, b)
	}
	return earlier(a, b)
}

// VClock is the per-connection virtual clock state kept at a contention
// point (§3.3): two registers, auxVC and Vtick. In MediaWorm each *message*
// acts as a connection, so a fresh VClock is used per message per point and
// discarded when the tail leaves.
type VClock struct {
	aux sim.Time
}

// Stamp implements the Virtual Clock update for one flit arriving at time
// now on a connection with the given vtick:
//
//	auxVC ← max(clock, auxVC); auxVC ← auxVC + Vtick
//
// and returns the flit's timestamp (the updated auxVC). Best-effort flits
// (vtick == sim.Forever) are stamped sim.Forever and do not advance the
// clock.
func (v *VClock) Stamp(now, vtick sim.Time) sim.Time {
	if vtick == sim.Forever {
		return sim.Forever
	}
	if now > v.aux {
		v.aux = now
	}
	v.aux += vtick
	return v.aux
}

// Aux returns the current auxVC value (for tests and instrumentation).
func (v *VClock) Aux() sim.Time { return v.aux }

// Reset clears the clock for reuse by a new message.
func (v *VClock) Reset() { v.aux = 0 }

// ServiceConfig carries the contention-point parameters a worst-case service
// characterization depends on: the virtual-channel partition at the point
// and, for the weighted disciplines, the per-partition weights.
type ServiceConfig struct {
	// VCs is the number of virtual channels multiplexed at the point;
	// RTVCs of them carry real-time traffic.
	VCs, RTVCs int
	// RTWeight and BEWeight are the per-VC weights of the real-time and
	// best-effort partitions under WRR/DRR/WF²Q+/SP+WRR (non-positive → 1).
	RTWeight, BEWeight int
	// Quantum is DRR's base deficit credit in flits per weight unit
	// (non-positive → 1).
	Quantum int
}

// partitionWeights returns the aggregate real-time and best-effort weights
// of the partition.
func (cfg ServiceConfig) partitionWeights() (rt, be float64) {
	rtw, bew := cfg.RTWeight, cfg.BEWeight
	if rtw <= 0 {
		rtw = 1
	}
	if bew <= 0 {
		bew = 1
	}
	return float64(cfg.RTVCs * rtw), float64((cfg.VCs - cfg.RTVCs) * bew)
}

// ServiceModel is the worst-case rate-latency characterization of one
// scheduling discipline at one contention point, in link-rate and flit-slot
// units so it stays independent of the physical channel speed: the
// real-time aggregate is guaranteed at least a Share fraction of the link
// bandwidth after at most LatencyFlits flit-transmission times of
// scheduling delay. internal/calculus turns this into a rate-latency
// service curve β(t) = Share·C·(t − LatencyFlits·cycle)⁺.
type ServiceModel struct {
	// Share is the guaranteed long-run fraction of link bandwidth available
	// to the real-time aggregate.
	Share float64
	// LatencyFlits is the worst-case scheduling latency, in flit slots,
	// before that share applies (non-preemption blocking, rotation turns).
	LatencyFlits float64
	// CrossBestEffort reports whether best-effort traffic must be counted
	// as cross traffic when computing leftover real-time service: true when
	// the discipline gives best-effort flits equal standing (FIFO), false
	// when its guarantee already isolates them (RoundRobin's slots, Virtual
	// Clock's strict timestamp priority).
	CrossBestEffort bool
}

// ServiceCurve returns the per-kind worst-case service characterization of
// a contention point for the real-time aggregate:
//
//   - FIFO serves in arrival order, so real-time flits get the whole link
//     but queue behind every best-effort flit that arrived earlier: full
//     share, no extra latency, best-effort counted as cross traffic.
//   - RoundRobin guarantees each VC one flit per rotation: the real-time
//     VCs jointly hold RTVCs/VCs of the link and wait at most the
//     best-effort VCs' slots (VCs − RTVCs flit times) per rotation;
//     best-effort is isolated by construction.
//   - VirtualClock serves finite timestamps strictly before best-effort
//     (timestamp ∞), so the aggregate holds the full link minus one flit of
//     non-preemption blocking — wormhole transmission is not preempted
//     mid-flit. This is the Nikolić–Indrusiak priority-preemptive shape.
func ServiceCurve(k Kind, cfg ServiceConfig) (ServiceModel, error) {
	if cfg.VCs <= 0 || cfg.RTVCs < 0 || cfg.RTVCs > cfg.VCs {
		return ServiceModel{}, fmt.Errorf("sched: invalid service config %+v", cfg)
	}
	switch k {
	case FIFO:
		return ServiceModel{Share: 1, LatencyFlits: 0, CrossBestEffort: true}, nil
	case RoundRobin:
		if cfg.RTVCs == 0 {
			return ServiceModel{}, fmt.Errorf("sched: round-robin service with no real-time VCs")
		}
		return ServiceModel{
			Share:        float64(cfg.RTVCs) / float64(cfg.VCs),
			LatencyFlits: float64(cfg.VCs - cfg.RTVCs),
		}, nil
	case VirtualClock:
		return ServiceModel{Share: 1, LatencyFlits: 1}, nil
	case WRR:
		// One rotation grants each VC weight flits: the real-time aggregate
		// holds Wrt/(Wrt+Wbe) of the link and waits at most the best-effort
		// partition's full rotation allowance before its turns come around.
		rt, be, err := rtShare(k, cfg)
		if err != nil {
			return ServiceModel{}, err
		}
		return ServiceModel{Share: rt / (rt + be), LatencyFlits: be}, nil
	case DRR:
		// Like WRR scaled by the quantum, plus up to one flit of carried
		// deficit residue per best-effort VC before a real-time visit.
		rt, be, err := rtShare(k, cfg)
		if err != nil {
			return ServiceModel{}, err
		}
		q := float64(cfg.Quantum)
		if q <= 0 {
			q = 1
		}
		return ServiceModel{
			Share:        rt / (rt + be),
			LatencyFlits: q*be + float64(cfg.VCs-cfg.RTVCs),
		}, nil
	case WF2Q:
		// WF²Q+ tracks the GPS fluid schedule within one maximum service
		// unit: weight-proportional share after at most one flit of
		// scheduling slack plus one flit of non-preemption blocking.
		rt, be, err := rtShare(k, cfg)
		if err != nil {
			return ServiceModel{}, err
		}
		return ServiceModel{Share: rt / (rt + be), LatencyFlits: 2}, nil
	case SPWRR:
		// The real-time partition occupies the top priority tier (that is
		// how the simulator wires it), so like Virtual Clock the aggregate
		// holds the whole link behind one flit of non-preemption blocking;
		// WRR only arbitrates within the tier.
		if cfg.RTVCs == 0 {
			return ServiceModel{}, fmt.Errorf("sched: sp+wrr service with no real-time VCs")
		}
		return ServiceModel{Share: 1, LatencyFlits: 1}, nil
	}
	return ServiceModel{}, fmt.Errorf("sched: unknown kind %d", k)
}

// rtShare returns the partition weight aggregates, rejecting an empty
// real-time partition (the weighted guarantee would be for nobody).
func rtShare(k Kind, cfg ServiceConfig) (rt, be float64, err error) {
	rt, be = cfg.partitionWeights()
	if cfg.RTVCs == 0 {
		return 0, 0, fmt.Errorf("sched: %v service with no real-time VCs", k)
	}
	return rt, be, nil
}
