// Package sched implements the resource-scheduling disciplines that multiplex
// router bandwidth among virtual channels: the conventional rate-agnostic
// FIFO and round-robin schedulers, and the paper's contribution — the
// Virtual Clock rate-based scheduler (Zhang, ACM TOCS 1991) that turns a
// vanilla wormhole router into the MediaWorm router (§3.3).
//
// A contention point (crossbar input multiplexer, output VC multiplexer, or
// the source NI's link multiplexer) presents the arbiter with one Candidate
// per virtual channel that has a flit ready; the arbiter picks the winner.
package sched

import (
	"fmt"
	"strings"

	"mediaworm/internal/sim"
)

// Kind selects a scheduling discipline.
type Kind uint8

const (
	// FIFO serves flits in arrival order at the contention point — the
	// scheduler of a conventional wormhole router and the paper's baseline.
	FIFO Kind = iota
	// RoundRobin cycles over virtual channels, one flit per grant.
	RoundRobin
	// VirtualClock serves the flit with the lowest virtual-clock timestamp,
	// giving each message bandwidth proportional to its request (1/Vtick).
	// Best-effort flits (timestamp sim.Forever) are served FIFO among
	// themselves and only when no real-time flit is ready.
	VirtualClock
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FIFO:
		return "fifo"
	case RoundRobin:
		return "round-robin"
	case VirtualClock:
		return "virtual-clock"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a policy name to a Kind. Accepted spellings are exact:
// "fifo"/"FIFO", "round-robin"/"rr", and "virtual-clock"/"vc"/"virtualclock".
// Near-miss junk — stray whitespace or mixed case like "Fifo " — is rejected
// with an error that names the canonical spelling instead of an opaque
// "unknown policy".
func ParseKind(s string) (Kind, error) {
	switch s {
	case "fifo", "FIFO":
		return FIFO, nil
	case "round-robin", "rr":
		return RoundRobin, nil
	case "virtual-clock", "vc", "virtualclock":
		return VirtualClock, nil
	}
	if norm := strings.ToLower(strings.TrimSpace(s)); norm != s {
		if k, err := ParseKind(norm); err == nil {
			return 0, fmt.Errorf("sched: unknown policy %q (policy names are lowercase without surrounding space: did you mean %q?)", s, k)
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q (valid: fifo, round-robin, rr, virtual-clock, vc, virtualclock)", s)
}

// Candidate describes one virtual channel competing at a contention point.
type Candidate struct {
	// VC identifies the channel (an index meaningful to the caller).
	VC int
	// TS is the head flit's Virtual Clock timestamp; sim.Forever for
	// best-effort traffic.
	TS sim.Time
	// Enq is the head flit's arrival instant at this point (the FIFO key
	// and the best-effort tie-break).
	Enq sim.Time
	// Seq is a strictly increasing arrival sequence number used to break
	// exact ties deterministically.
	Seq uint64
}

// Arbiter picks one winner among candidates. Implementations may keep state
// (round-robin position), so use one Arbiter instance per contention point.
// Pick returns the index into cands of the winner; cands must be non-empty.
type Arbiter interface {
	Pick(cands []Candidate) int
	Kind() Kind
}

// New returns a fresh arbiter of the given kind.
func New(k Kind) Arbiter {
	switch k {
	case FIFO:
		return &fifoArbiter{}
	case RoundRobin:
		return &rrArbiter{last: -1}
	case VirtualClock:
		return &vcArbiter{}
	default:
		panic(fmt.Sprintf("sched: unknown kind %d", k))
	}
}

// PickObserver is an instrumentation hook: it receives each arbitration's
// winning candidate and the field size. The observability layer supplies
// one per contention point via Observed.
type PickObserver func(winner Candidate, candidates int)

// Observed wraps an arbiter so every Pick is reported to fn. The wrapper
// is transparent: the inner arbiter keeps its state and Kind.
func Observed(a Arbiter, fn PickObserver) Arbiter {
	if fn == nil {
		return a
	}
	return &observedArbiter{inner: a, fn: fn}
}

type observedArbiter struct {
	inner Arbiter
	fn    PickObserver
}

func (o *observedArbiter) Kind() Kind { return o.inner.Kind() }

func (o *observedArbiter) Pick(cands []Candidate) int {
	w := o.inner.Pick(cands)
	o.fn(cands[w], len(cands))
	return w
}

type fifoArbiter struct{}

func (*fifoArbiter) Kind() Kind { return FIFO }

func (*fifoArbiter) Pick(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if earlier(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}

// earlier orders by (Enq, Seq).
func earlier(a, b Candidate) bool {
	if a.Enq != b.Enq {
		return a.Enq < b.Enq
	}
	return a.Seq < b.Seq
}

type rrArbiter struct {
	last int // VC id of the previous winner
}

func (*rrArbiter) Kind() Kind { return RoundRobin }

// Pick grants the candidate with the smallest VC id strictly greater than the
// previous winner's, wrapping around.
func (r *rrArbiter) Pick(cands []Candidate) int {
	best := -1
	wrap := -1
	for i, c := range cands {
		if c.VC > r.last && (best == -1 || c.VC < cands[best].VC) {
			best = i
		}
		if wrap == -1 || c.VC < cands[wrap].VC {
			wrap = i
		}
	}
	if best == -1 {
		best = wrap
	}
	r.last = cands[best].VC
	return best
}

type vcArbiter struct{}

func (*vcArbiter) Kind() Kind { return VirtualClock }

// Pick serves the lowest finite timestamp; among best-effort-only candidates
// it falls back to FIFO order, implementing Vtick = ∞ (§3.3: best-effort has
// maximum slack).
func (*vcArbiter) Pick(cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if c.TS == sim.Forever {
			continue
		}
		if best == -1 || less(c, cands[best]) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	// All best-effort: arrival order.
	best = 0
	for i := 1; i < len(cands); i++ {
		if earlier(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}

// less orders by (TS, Enq, Seq).
func less(a, b Candidate) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return earlier(a, b)
}

// Better reports whether a should be served before b under policy k,
// as a stateless pairwise comparison. RoundRobin has no meaningful
// pairwise order and falls back to arrival order.
func Better(k Kind, a, b Candidate) bool {
	if k == VirtualClock {
		return less(a, b)
	}
	return earlier(a, b)
}

// VClock is the per-connection virtual clock state kept at a contention
// point (§3.3): two registers, auxVC and Vtick. In MediaWorm each *message*
// acts as a connection, so a fresh VClock is used per message per point and
// discarded when the tail leaves.
type VClock struct {
	aux sim.Time
}

// Stamp implements the Virtual Clock update for one flit arriving at time
// now on a connection with the given vtick:
//
//	auxVC ← max(clock, auxVC); auxVC ← auxVC + Vtick
//
// and returns the flit's timestamp (the updated auxVC). Best-effort flits
// (vtick == sim.Forever) are stamped sim.Forever and do not advance the
// clock.
func (v *VClock) Stamp(now, vtick sim.Time) sim.Time {
	if vtick == sim.Forever {
		return sim.Forever
	}
	if now > v.aux {
		v.aux = now
	}
	v.aux += vtick
	return v.aux
}

// Aux returns the current auxVC value (for tests and instrumentation).
func (v *VClock) Aux() sim.Time { return v.aux }

// Reset clears the clock for reuse by a new message.
func (v *VClock) Reset() { v.aux = 0 }

// ServiceConfig carries the contention-point parameters a worst-case service
// characterization depends on: the virtual-channel partition at the point.
type ServiceConfig struct {
	// VCs is the number of virtual channels multiplexed at the point;
	// RTVCs of them carry real-time traffic.
	VCs, RTVCs int
}

// ServiceModel is the worst-case rate-latency characterization of one
// scheduling discipline at one contention point, in link-rate and flit-slot
// units so it stays independent of the physical channel speed: the
// real-time aggregate is guaranteed at least a Share fraction of the link
// bandwidth after at most LatencyFlits flit-transmission times of
// scheduling delay. internal/calculus turns this into a rate-latency
// service curve β(t) = Share·C·(t − LatencyFlits·cycle)⁺.
type ServiceModel struct {
	// Share is the guaranteed long-run fraction of link bandwidth available
	// to the real-time aggregate.
	Share float64
	// LatencyFlits is the worst-case scheduling latency, in flit slots,
	// before that share applies (non-preemption blocking, rotation turns).
	LatencyFlits float64
	// CrossBestEffort reports whether best-effort traffic must be counted
	// as cross traffic when computing leftover real-time service: true when
	// the discipline gives best-effort flits equal standing (FIFO), false
	// when its guarantee already isolates them (RoundRobin's slots, Virtual
	// Clock's strict timestamp priority).
	CrossBestEffort bool
}

// ServiceCurve returns the per-kind worst-case service characterization of
// a contention point for the real-time aggregate:
//
//   - FIFO serves in arrival order, so real-time flits get the whole link
//     but queue behind every best-effort flit that arrived earlier: full
//     share, no extra latency, best-effort counted as cross traffic.
//   - RoundRobin guarantees each VC one flit per rotation: the real-time
//     VCs jointly hold RTVCs/VCs of the link and wait at most the
//     best-effort VCs' slots (VCs − RTVCs flit times) per rotation;
//     best-effort is isolated by construction.
//   - VirtualClock serves finite timestamps strictly before best-effort
//     (timestamp ∞), so the aggregate holds the full link minus one flit of
//     non-preemption blocking — wormhole transmission is not preempted
//     mid-flit. This is the Nikolić–Indrusiak priority-preemptive shape.
func ServiceCurve(k Kind, cfg ServiceConfig) (ServiceModel, error) {
	if cfg.VCs <= 0 || cfg.RTVCs < 0 || cfg.RTVCs > cfg.VCs {
		return ServiceModel{}, fmt.Errorf("sched: invalid service config %+v", cfg)
	}
	switch k {
	case FIFO:
		return ServiceModel{Share: 1, LatencyFlits: 0, CrossBestEffort: true}, nil
	case RoundRobin:
		if cfg.RTVCs == 0 {
			return ServiceModel{}, fmt.Errorf("sched: round-robin service with no real-time VCs")
		}
		return ServiceModel{
			Share:        float64(cfg.RTVCs) / float64(cfg.VCs),
			LatencyFlits: float64(cfg.VCs - cfg.RTVCs),
		}, nil
	case VirtualClock:
		return ServiceModel{Share: 1, LatencyFlits: 1}, nil
	}
	return ServiceModel{}, fmt.Errorf("sched: unknown kind %d", k)
}
