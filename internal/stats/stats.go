// Package stats provides the measurement machinery for the MediaWorm
// experiments: numerically stable moment accumulators (Welford), fixed-width
// histograms, frame delivery-interval trackers (the paper's d and σd), and
// best-effort latency / saturation accounting.
package stats

import (
	"fmt"
	"math"

	"mediaworm/internal/sim"
)

// Welford accumulates count, mean, variance, min and max in a numerically
// stable single pass. The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or NaN with no observations.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the population variance, or NaN with no observations.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 {
	v := w.Variance()
	if math.IsNaN(v) {
		return v
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation, or NaN with none.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation, or NaN with none.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// SampleVariance returns the unbiased (n−1 denominator) variance, NaN with
// fewer than two observations. Use it when the observations are a sample —
// e.g. replica measurements of one sweep point — rather than the population.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// tCrit975 holds two-sided Student-t 95% critical values (0.975 quantile)
// for 1–30 degrees of freedom; beyond 30 the normal 1.96 is close enough.
var tCrit975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// (Student's t), or 0 with fewer than two observations — a single replica
// carries no spread information, and sweeps render the 0 as an exact point.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	df := w.n - 1
	t := 1.960
	if df <= uint64(len(tCrit975)) {
		t = tCrit975[df-1]
	}
	return t * math.Sqrt(w.SampleVariance()/float64(w.n))
}

// Merge folds other into w, as if all of other's observations had been added
// to w directly (Chan et al. parallel variance combination).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.mean += delta * float64(other.n) / float64(n)
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// String summarizes the accumulator for debugging.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		w.n, w.Mean(), w.StdDev(), w.Min(), w.Max())
}

// Histogram is a fixed-width bucket histogram with underflow/overflow
// counters, used for latency distributions.
type Histogram struct {
	lo, width float64
	buckets   []uint64
	under     uint64
	over      uint64
	total     uint64
}

// NewHistogram covers [lo, lo+width*n) with n buckets of the given width.
func NewHistogram(lo, width float64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, width: width, buckets: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.lo {
		h.under++
		return
	}
	i := int((x - h.lo) / h.width)
	if i >= len(h.buckets) {
		h.over++
		return
	}
	h.buckets[i]++
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of in-range buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.under, h.over }

// Quantile returns an approximate q-quantile (0 <= q <= 1) assuming
// observations are uniform within a bucket. Out-of-range mass is pinned to
// the range edges. Returns NaN with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.buckets {
		if cum+float64(c) >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum += float64(c)
	}
	return h.lo + float64(len(h.buckets))*h.width
}

// IntervalTracker measures the paper's headline metrics: the mean frame
// delivery interval d and its standard deviation σd, pooled across all
// streams (§4.1). The delivery interval is the time between deliveries of
// successive frames of the same stream at its destination.
type IntervalTracker struct {
	last    map[int]sim.Time // stream -> last delivery instant
	warmup  sim.Time         //mw:snapcover — constructor input, re-derived from the embedded config on restore
	samples Welford
}

// NewIntervalTracker ignores deliveries before warmup and uses the first
// post-warmup delivery of each stream only to prime its interval clock.
func NewIntervalTracker(warmup sim.Time) *IntervalTracker {
	return &IntervalTracker{last: make(map[int]sim.Time), warmup: warmup}
}

// Observe records that stream's frame was fully delivered at t.
func (it *IntervalTracker) Observe(stream int, t sim.Time) {
	if t < it.warmup {
		return
	}
	if last, ok := it.last[stream]; ok {
		it.samples.Add(sim.Time(t - last).Milliseconds())
	}
	it.last[stream] = t
}

// Intervals exposes the pooled interval accumulator (milliseconds).
func (it *IntervalTracker) Intervals() *Welford { return &it.samples }

// MeanMs returns d in milliseconds.
func (it *IntervalTracker) MeanMs() float64 { return it.samples.Mean() }

// StdDevMs returns σd in milliseconds.
func (it *IntervalTracker) StdDevMs() float64 { return it.samples.StdDev() }

// Streams returns how many distinct streams have delivered at least one
// post-warmup frame.
func (it *IntervalTracker) Streams() int { return len(it.last) }

// BestEffort accumulates best-effort message latency (µs) and the
// injected/delivered counts that drive saturation detection (Table 2's
// "Sat." entries). Latency samples before warmup are discarded.
type BestEffort struct {
	warmup    sim.Time //mw:snapcover — constructor input, re-derived from the embedded config on restore
	latency   Welford
	injected  uint64
	delivered uint64
}

// NewBestEffort returns a tracker that ignores pre-warmup samples.
func NewBestEffort(warmup sim.Time) *BestEffort {
	return &BestEffort{warmup: warmup}
}

// Injected counts one message entering a source queue at time t.
func (b *BestEffort) Injected(t sim.Time) {
	if t >= b.warmup {
		b.injected++
	}
}

// Delivered records a message injected at inj and fully delivered at t.
func (b *BestEffort) Delivered(inj, t sim.Time) {
	if inj < b.warmup {
		return
	}
	b.delivered++
	b.latency.Add(sim.Time(t - inj).Microseconds())
}

// Latency exposes the latency accumulator (µs).
func (b *BestEffort) Latency() *Welford { return &b.latency }

// MeanLatencyUs returns the mean best-effort latency in microseconds.
func (b *BestEffort) MeanLatencyUs() float64 { return b.latency.Mean() }

// Saturated reports whether the best-effort class could not drain its
// offered load: a persistent backlog of more than frac of the post-warmup
// injections (the paper's "Sat." condition). With no injections it is false.
func (b *BestEffort) Saturated(frac float64) bool {
	if b.injected == 0 {
		return false
	}
	backlog := float64(b.injected) - float64(b.delivered)
	return backlog > frac*float64(b.injected)
}

// Counts returns post-warmup injected and delivered message counts.
func (b *BestEffort) Counts() (injected, delivered uint64) {
	return b.injected, b.delivered
}
