package stats

// FrameLedger reconciles video frames emitted at the sources against frames
// fully delivered at the sinks. Under faults the two diverge — killed worms
// take partial frames with them — and the delivered-frame ratio is the
// headline resilience metric of the FaultSweep experiment.
type FrameLedger struct {
	emitted   uint64 //mw:snapcover — total; recomputed from perStream by RestoreState
	delivered uint64 //mw:snapcover — total; recomputed from perStream by RestoreState
	perStream map[int]*streamFrames
}

type streamFrames struct {
	emitted   uint64
	delivered uint64
}

// NewFrameLedger creates an empty ledger.
func NewFrameLedger() *FrameLedger {
	return &FrameLedger{perStream: make(map[int]*streamFrames)}
}

func (l *FrameLedger) stream(id int) *streamFrames {
	s := l.perStream[id]
	if s == nil {
		s = &streamFrames{}
		l.perStream[id] = s
	}
	return s
}

// Emitted records that a source handed a complete frame to the network.
func (l *FrameLedger) Emitted(stream int) {
	l.emitted++
	l.stream(stream).emitted++
}

// Delivered records that a sink reassembled a complete frame.
func (l *FrameLedger) Delivered(stream int) {
	l.delivered++
	l.stream(stream).delivered++
}

// Counts returns total frames emitted and delivered.
func (l *FrameLedger) Counts() (emitted, delivered uint64) {
	return l.emitted, l.delivered
}

// Ratio returns delivered/emitted (1 when nothing was emitted).
func (l *FrameLedger) Ratio() float64 {
	if l.emitted == 0 {
		return 1
	}
	return float64(l.delivered) / float64(l.emitted)
}

// StreamRatio returns the delivered-frame ratio of one stream (1 when the
// stream emitted nothing).
func (l *FrameLedger) StreamRatio(stream int) float64 {
	s := l.perStream[stream]
	if s == nil || s.emitted == 0 {
		return 1
	}
	return float64(s.delivered) / float64(s.emitted)
}

// Streams returns the number of streams that emitted at least one frame.
func (l *FrameLedger) Streams() int { return len(l.perStream) }
