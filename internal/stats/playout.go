package stats

import "mediaworm/internal/sim"

// PlayoutTracker turns frame deliveries into the end-user QoS measure the
// paper's jitter numbers stand in for: a video client buffers the first B
// frames, then plays one frame per interval; a frame that arrives after its
// scheduled playout instant is a *deadline miss* (a visible glitch).
//
// Per stream, playout is anchored at the first observed frame's delivery:
// frame k's deadline is firstDelivery + (B + k − k₀)·interval.
type PlayoutTracker struct {
	interval sim.Time //mw:snapcover — constructor input, re-derived from the embedded config on restore
	buffer   int      //mw:snapcover — constructor input, re-derived from the embedded config on restore
	warmup   sim.Time //mw:snapcover — constructor input, re-derived from the embedded config on restore
	streams  map[int]*playoutStream

	frames uint64
	misses uint64
	// lateness accumulates how late missing frames are (ms).
	lateness Welford
}

type playoutStream struct {
	anchor     sim.Time
	firstFrame int
}

// NewPlayoutTracker tracks deadline misses for clients that buffer `buffer`
// frames before starting playback at the given frame interval. Deliveries
// before warmup are ignored.
func NewPlayoutTracker(interval sim.Time, buffer int, warmup sim.Time) *PlayoutTracker {
	if interval <= 0 || buffer < 0 {
		panic("stats: invalid playout parameters")
	}
	return &PlayoutTracker{
		interval: interval,
		buffer:   buffer,
		warmup:   warmup,
		streams:  make(map[int]*playoutStream),
	}
}

// Observe records that stream's frame frameSeq was fully delivered at t.
func (p *PlayoutTracker) Observe(stream, frameSeq int, t sim.Time) {
	if t < p.warmup {
		return
	}
	st, ok := p.streams[stream]
	if !ok {
		p.streams[stream] = &playoutStream{anchor: t, firstFrame: frameSeq}
		return // the anchoring frame is buffered, not judged
	}
	p.frames++
	deadline := st.anchor + sim.Time(p.buffer+frameSeq-st.firstFrame)*p.interval
	if t > deadline {
		p.misses++
		p.lateness.Add(sim.Time(t - deadline).Milliseconds())
	}
}

// Frames returns the number of judged frames (excluding anchors).
func (p *PlayoutTracker) Frames() uint64 { return p.frames }

// Misses returns the number of deadline misses.
func (p *PlayoutTracker) Misses() uint64 { return p.misses }

// MissRate returns misses/frames, or 0 with no frames.
func (p *PlayoutTracker) MissRate() float64 {
	if p.frames == 0 {
		return 0
	}
	return float64(p.misses) / float64(p.frames)
}

// MeanLatenessMs returns the average lateness of missing frames in
// milliseconds (NaN with no misses).
func (p *PlayoutTracker) MeanLatenessMs() float64 { return p.lateness.Mean() }
