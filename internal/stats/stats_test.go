package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mediaworm/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Count() != 0 {
		t.Fatal("fresh Welford has samples")
	}
	for _, v := range []float64{w.Mean(), w.Variance(), w.StdDev(), w.Min(), w.Max()} {
		if !math.IsNaN(v) {
			t.Fatalf("empty Welford stat = %v, want NaN", v)
		}
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count %d", w.Count())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean %v, want 5", w.Mean())
	}
	if !almostEq(w.StdDev(), 2, 1e-12) {
		t.Fatalf("sd %v, want 2", w.StdDev())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Fatalf("single-sample stats wrong: %v", w.String())
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset with small variance is the classic catastrophic
	// cancellation case for naive sum-of-squares.
	var w Welford
	const offset = 1e9
	for i := 0; i < 1000; i++ {
		w.Add(offset + float64(i%2)) // values offset, offset+1 alternating
	}
	if !almostEq(w.Variance(), 0.25, 1e-6) {
		t.Fatalf("variance %v, want 0.25", w.Variance())
	}
}

func TestWelfordMerge(t *testing.T) {
	var a, b, all Welford
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for i, x := range xs {
		all.Add(x)
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if !almostEq(a.Mean(), all.Mean(), 1e-9) || !almostEq(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merged moments %v vs %v", a.String(), all.String())
	}
	if a.Min() != 1 || a.Max() != 10 {
		t.Fatalf("merged min/max %v/%v", a.Min(), a.Max())
	}
}

func TestWelfordMergeWithEmpty(t *testing.T) {
	var a, empty Welford
	a.Add(5)
	a.Merge(&empty)
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed stats")
	}
	var c Welford
	c.Merge(&a)
	if c.Count() != 1 || c.Mean() != 5 {
		t.Fatal("merge into empty failed")
	}
}

// Property: merging any split of a sample equals accumulating it whole.
func TestPropertyMergeEquivalence(t *testing.T) {
	f := func(raw []float32, cut uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(cut) % len(raw)
		var a, b, all Welford
		for i, r := range raw {
			x := float64(r)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		scale := 1 + math.Abs(all.Variance())
		return a.Count() == all.Count() &&
			almostEq(a.Mean(), all.Mean(), 1e-6*(1+math.Abs(all.Mean()))) &&
			almostEq(a.Variance(), all.Variance(), 1e-5*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5) // [0,50)
	for _, x := range []float64{-1, 0, 9.99, 10, 25, 49.9, 50, 1000} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("under/over %d/%d, want 1/2", under, over)
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(4) != 1 {
		t.Fatalf("bucket counts wrong: %+v", h)
	}
	if h.Buckets() != 5 {
		t.Fatalf("buckets %d", h.Buckets())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i) / 10) // uniform over [0,100)
	}
	med := h.Quantile(0.5)
	if !almostEq(med, 50, 1.0) {
		t.Fatalf("median %v, want ~50", med)
	}
	if !math.IsNaN(NewHistogram(0, 1, 10).Quantile(0.5)) {
		t.Fatal("quantile of empty histogram should be NaN")
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q should be NaN")
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid histogram")
		}
	}()
	NewHistogram(0, 0, 10)
}

func TestIntervalTrackerJitterFree(t *testing.T) {
	it := NewIntervalTracker(0)
	// Two streams delivering every 33 ms, phase-shifted.
	for i := 0; i < 10; i++ {
		it.Observe(1, sim.Time(i)*33*sim.Millisecond)
		it.Observe(2, sim.Time(i)*33*sim.Millisecond+7*sim.Millisecond)
	}
	if it.Streams() != 2 {
		t.Fatalf("streams %d", it.Streams())
	}
	if !almostEq(it.MeanMs(), 33, 1e-9) {
		t.Fatalf("d = %v ms, want 33", it.MeanMs())
	}
	if !almostEq(it.StdDevMs(), 0, 1e-9) {
		t.Fatalf("σd = %v ms, want 0", it.StdDevMs())
	}
	if it.Intervals().Count() != 18 {
		t.Fatalf("interval count %d, want 18", it.Intervals().Count())
	}
}

func TestIntervalTrackerJitter(t *testing.T) {
	it := NewIntervalTracker(0)
	// Alternating 23/43 ms intervals: mean 33, sd 10.
	ts := sim.Time(0)
	it.Observe(1, ts)
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			ts += 23 * sim.Millisecond
		} else {
			ts += 43 * sim.Millisecond
		}
		it.Observe(1, ts)
	}
	if !almostEq(it.MeanMs(), 33, 1e-9) {
		t.Fatalf("d = %v", it.MeanMs())
	}
	if !almostEq(it.StdDevMs(), 10, 1e-9) {
		t.Fatalf("σd = %v, want 10", it.StdDevMs())
	}
}

func TestIntervalTrackerWarmup(t *testing.T) {
	it := NewIntervalTracker(100 * sim.Millisecond)
	it.Observe(1, 50*sim.Millisecond)  // discarded entirely
	it.Observe(1, 120*sim.Millisecond) // primes
	it.Observe(1, 150*sim.Millisecond) // first interval: 30 ms
	if it.Intervals().Count() != 1 {
		t.Fatalf("interval count %d, want 1", it.Intervals().Count())
	}
	if !almostEq(it.MeanMs(), 30, 1e-9) {
		t.Fatalf("d = %v, want 30 (pre-warmup delivery must not count)", it.MeanMs())
	}
}

func TestBestEffortLatencyAndSaturation(t *testing.T) {
	b := NewBestEffort(10 * sim.Microsecond)
	b.Injected(5 * sim.Microsecond) // pre-warmup, ignored
	for i := 0; i < 100; i++ {
		inj := sim.Time(20+i) * sim.Microsecond
		b.Injected(inj)
		if i < 98 { // two messages stuck
			b.Delivered(inj, inj+50*sim.Microsecond)
		}
	}
	if !almostEq(b.MeanLatencyUs(), 50, 1e-9) {
		t.Fatalf("latency %v µs, want 50", b.MeanLatencyUs())
	}
	inj, del := b.Counts()
	if inj != 100 || del != 98 {
		t.Fatalf("counts %d/%d", inj, del)
	}
	if b.Saturated(0.05) {
		t.Fatal("2% backlog flagged as saturation at 5% threshold")
	}
	if !b.Saturated(0.01) {
		t.Fatal("2% backlog not flagged at 1% threshold")
	}
}

func TestBestEffortPreWarmupDeliveryIgnored(t *testing.T) {
	b := NewBestEffort(100)
	b.Delivered(50, 150) // injected pre-warmup
	if b.Latency().Count() != 0 {
		t.Fatal("pre-warmup injection contributed a latency sample")
	}
}

func TestBestEffortEmptyNotSaturated(t *testing.T) {
	b := NewBestEffort(0)
	if b.Saturated(0.05) {
		t.Fatal("no traffic must not read as saturated")
	}
}

func TestWelfordSampleVarianceAndCI95(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.SampleVariance()) || w.CI95() != 0 {
		t.Fatalf("empty: sample variance %v, CI %v", w.SampleVariance(), w.CI95())
	}
	w.Add(5)
	if !math.IsNaN(w.SampleVariance()) || w.CI95() != 0 {
		t.Fatalf("single: sample variance %v, CI %v; one replica has no spread", w.SampleVariance(), w.CI95())
	}
	// {2, 4, 6}: mean 4, sample variance 4, sd 2, sem 2/√3, t(df=2) = 4.303.
	w = Welford{}
	for _, x := range []float64{2, 4, 6} {
		w.Add(x)
	}
	if !almostEq(w.SampleVariance(), 4, 1e-12) {
		t.Fatalf("sample variance %v, want 4", w.SampleVariance())
	}
	want := 4.303 * 2 / math.Sqrt(3)
	if !almostEq(w.CI95(), want, 1e-9) {
		t.Fatalf("CI95 %v, want %v", w.CI95(), want)
	}
	// Large n falls back to the normal critical value.
	w = Welford{}
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 2))
	}
	sem := math.Sqrt(w.SampleVariance() / 100)
	if !almostEq(w.CI95(), 1.960*sem, 1e-12) {
		t.Fatalf("large-n CI95 %v, want %v", w.CI95(), 1.960*sem)
	}
	// The interval shrinks as replicas accumulate (fixed spread).
	narrow, wide := w.CI95(), 0.0
	{
		var w3 Welford
		for _, x := range []float64{0, 1, 0} {
			w3.Add(x)
		}
		wide = w3.CI95()
	}
	if narrow >= wide {
		t.Fatalf("CI did not shrink with replicas: %v vs %v", narrow, wide)
	}
}
