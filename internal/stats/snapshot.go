package stats

import (
	"fmt"
	"sort"

	"mediaworm/internal/sim"
	"mediaworm/internal/snapshot"
)

// Checkpoint support. Accumulators are tiny, so every field is serialized
// directly; map-keyed trackers emit entries in key order so the byte stream
// is deterministic.

// EncodeState writes the accumulator's fields.
func (w *Welford) EncodeState(sw *snapshot.Writer) {
	sw.U64(w.n)
	sw.F64(w.mean)
	sw.F64(w.m2)
	sw.F64(w.min)
	sw.F64(w.max)
}

// RestoreState overwrites the accumulator's fields.
func (w *Welford) RestoreState(r *snapshot.Reader) {
	w.n = r.U64()
	w.mean = r.F64()
	w.m2 = r.F64()
	w.min = r.F64()
	w.max = r.F64()
}

// EncodeState writes the tracker's per-stream clocks (in stream order) and
// the pooled interval accumulator. The warmup bound is configuration, not
// state, and is rebuilt by the restore path.
func (it *IntervalTracker) EncodeState(w *snapshot.Writer) {
	streams := make([]int, 0, len(it.last))
	for s := range it.last {
		streams = append(streams, s)
	}
	sort.Ints(streams)
	w.Int(len(streams))
	for _, s := range streams {
		w.Int(s)
		w.Time(it.last[s])
	}
	it.samples.EncodeState(w)
}

// RestoreState overwrites the tracker's state.
func (it *IntervalTracker) RestoreState(r *snapshot.Reader) error {
	n := r.Len()
	it.last = make(map[int]sim.Time, n)
	for i := 0; i < n; i++ {
		s := r.Int()
		t := r.Time()
		if err := r.Err(); err != nil {
			return err
		}
		if _, dup := it.last[s]; dup {
			return &snapshot.InvariantError{
				Invariant: "interval-tracker",
				Detail:    fmt.Sprintf("duplicate stream %d", s),
			}
		}
		it.last[s] = t
	}
	it.samples.RestoreState(r)
	return r.Err()
}

// EncodeState writes the best-effort latency/saturation accumulators.
func (b *BestEffort) EncodeState(w *snapshot.Writer) {
	b.latency.EncodeState(w)
	w.U64(b.injected)
	w.U64(b.delivered)
}

// RestoreState overwrites the best-effort accumulators.
func (b *BestEffort) RestoreState(r *snapshot.Reader) error {
	b.latency.RestoreState(r)
	b.injected = r.U64()
	b.delivered = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if b.delivered > b.injected {
		return &snapshot.InvariantError{
			Invariant: "best-effort-counts",
			Detail:    fmt.Sprintf("delivered %d exceeds injected %d", b.delivered, b.injected),
		}
	}
	return nil
}

// EncodeState writes the playout tracker's per-stream anchors (in stream
// order) and miss accumulators.
func (p *PlayoutTracker) EncodeState(w *snapshot.Writer) {
	streams := make([]int, 0, len(p.streams))
	for s := range p.streams {
		streams = append(streams, s)
	}
	sort.Ints(streams)
	w.Int(len(streams))
	for _, s := range streams {
		st := p.streams[s]
		w.Int(s)
		w.Time(st.anchor)
		w.Int(st.firstFrame)
	}
	w.U64(p.frames)
	w.U64(p.misses)
	p.lateness.EncodeState(w)
}

// RestoreState overwrites the playout tracker's state.
func (p *PlayoutTracker) RestoreState(r *snapshot.Reader) error {
	n := r.Len()
	p.streams = make(map[int]*playoutStream, n)
	for i := 0; i < n; i++ {
		s := r.Int()
		st := &playoutStream{anchor: r.Time(), firstFrame: r.Int()}
		if err := r.Err(); err != nil {
			return err
		}
		if _, dup := p.streams[s]; dup {
			return &snapshot.InvariantError{
				Invariant: "playout-tracker",
				Detail:    fmt.Sprintf("duplicate stream %d", s),
			}
		}
		p.streams[s] = st
	}
	p.frames = r.U64()
	p.misses = r.U64()
	p.lateness.RestoreState(r)
	return r.Err()
}

// EncodeState writes the ledger's per-stream frame counts in stream order.
// The totals are derived (sums over streams) and recomputed on restore.
func (l *FrameLedger) EncodeState(w *snapshot.Writer) {
	streams := make([]int, 0, len(l.perStream))
	for s := range l.perStream {
		streams = append(streams, s)
	}
	sort.Ints(streams)
	w.Int(len(streams))
	for _, s := range streams {
		st := l.perStream[s]
		w.Int(s)
		w.U64(st.emitted)
		w.U64(st.delivered)
	}
}

// RestoreState overwrites the ledger's state.
func (l *FrameLedger) RestoreState(r *snapshot.Reader) error {
	n := r.Len()
	l.perStream = make(map[int]*streamFrames, n)
	l.emitted, l.delivered = 0, 0
	for i := 0; i < n; i++ {
		s := r.Int()
		st := &streamFrames{emitted: r.U64(), delivered: r.U64()}
		if err := r.Err(); err != nil {
			return err
		}
		if _, dup := l.perStream[s]; dup {
			return &snapshot.InvariantError{
				Invariant: "frame-ledger",
				Detail:    fmt.Sprintf("duplicate stream %d", s),
			}
		}
		if st.delivered > st.emitted {
			return &snapshot.InvariantError{
				Invariant: "frame-ledger",
				Detail: fmt.Sprintf("stream %d: delivered %d exceeds emitted %d",
					s, st.delivered, st.emitted),
			}
		}
		l.perStream[s] = st
		l.emitted += st.emitted
		l.delivered += st.delivered
	}
	return r.Err()
}
