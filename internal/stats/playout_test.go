package stats

import (
	"math"
	"testing"

	"mediaworm/internal/sim"
)

const frame = 33 * sim.Millisecond

func TestPlayoutJitterFreeStreamNeverMisses(t *testing.T) {
	p := NewPlayoutTracker(frame, 2, 0)
	for k := 0; k < 50; k++ {
		p.Observe(1, k, sim.Time(k)*frame+2*sim.Millisecond)
	}
	if p.Frames() != 49 { // the anchor frame is not judged
		t.Fatalf("frames %d", p.Frames())
	}
	if p.Misses() != 0 || p.MissRate() != 0 {
		t.Fatalf("misses %d on a perfectly paced stream", p.Misses())
	}
}

func TestPlayoutBufferAbsorbsJitter(t *testing.T) {
	// Frame 10 arrives 1.5 intervals late; a 2-frame buffer absorbs it,
	// a 1-frame buffer does not.
	deliver := func(buffer int) *PlayoutTracker {
		p := NewPlayoutTracker(frame, buffer, 0)
		for k := 0; k < 20; k++ {
			at := sim.Time(k) * frame
			if k == 10 {
				at += frame + frame/2
			}
			p.Observe(1, k, at)
		}
		return p
	}
	if p := deliver(2); p.Misses() != 0 {
		t.Fatalf("2-frame buffer missed %d", p.Misses())
	}
	p := deliver(1)
	if p.Misses() != 1 {
		t.Fatalf("1-frame buffer misses %d, want 1", p.Misses())
	}
	if got := p.MeanLatenessMs(); math.Abs(got-16.5) > 0.01 {
		t.Fatalf("lateness %.2f ms, want 16.5", got)
	}
}

func TestPlayoutZeroBuffer(t *testing.T) {
	p := NewPlayoutTracker(frame, 0, 0)
	p.Observe(1, 0, 0)
	p.Observe(1, 1, frame+1) // 1 ns past the deadline
	if p.Misses() != 1 {
		t.Fatalf("misses %d", p.Misses())
	}
}

func TestPlayoutPerStreamAnchors(t *testing.T) {
	p := NewPlayoutTracker(frame, 1, 0)
	// Stream 2 starts late but on its own pace: no misses.
	p.Observe(1, 0, 0)
	p.Observe(2, 0, 10*frame)
	p.Observe(1, 1, frame)
	p.Observe(2, 1, 11*frame)
	if p.Misses() != 0 {
		t.Fatalf("cross-stream anchor leakage: %d misses", p.Misses())
	}
}

func TestPlayoutWarmup(t *testing.T) {
	p := NewPlayoutTracker(frame, 1, 100*frame)
	p.Observe(1, 0, 0) // ignored, pre-warmup
	if len(p.streams) != 0 {
		t.Fatal("pre-warmup delivery anchored a stream")
	}
	p.Observe(1, 200, 200*frame) // anchor
	p.Observe(1, 201, 201*frame)
	if p.Frames() != 1 || p.Misses() != 0 {
		t.Fatalf("frames %d misses %d", p.Frames(), p.Misses())
	}
}

func TestPlayoutAnchorsMidStream(t *testing.T) {
	// Anchoring on frame 5 (earlier frames lost to warmup) must use the
	// frame sequence offset.
	p := NewPlayoutTracker(frame, 1, 0)
	p.Observe(1, 5, 100*frame)
	p.Observe(1, 6, 101*frame)   // deadline 100+1+1 = 102·frame: fine
	p.Observe(1, 7, 104*frame+1) // deadline 103·frame: miss
	if p.Misses() != 1 || p.Frames() != 2 {
		t.Fatalf("frames %d misses %d", p.Frames(), p.Misses())
	}
}

func TestPlayoutInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPlayoutTracker(0, 2, 0)
}

func TestPlayoutEmptyRate(t *testing.T) {
	p := NewPlayoutTracker(frame, 2, 0)
	if p.MissRate() != 0 {
		t.Fatal("empty tracker rate")
	}
	if !math.IsNaN(p.MeanLatenessMs()) {
		t.Fatal("lateness of no misses should be NaN")
	}
}
