package mediaworm

import (
	"bytes"
	"runtime"
	"testing"

	"mediaworm/internal/topology"
)

// scale16Cfg is the datacenter-scale smoke configuration: a 16×16 torus at
// the paper's concentration (4 endpoints per router → 1024 endpoints) with
// a heavily scaled-down video time base so the run stays short. At this
// size the fabric carries well over ten thousand concurrent streams.
func scale16Cfg() Config {
	cfg := DefaultConfig().Scale(0.02)
	cfg.Topology = "torus16x16"
	cfg.Load = 0.15
	cfg.RTShare = 0.8
	cfg.Warmup = cfg.FrameInterval
	cfg.Measure = 4 * cfg.FrameInterval
	return cfg
}

// TestScale16x16TorusBuildBudget builds the 16×16 torus and holds the
// struct-of-arrays layout to a bytes-per-router budget: router input/output
// VC state, flit buffers, NI/sink state and per-stream workload state are
// slab allocations, so construction cost per router must stay bounded even
// as the fabric grows 64× beyond the paper's four switches. CI runs this
// under GOMEMLIMIT so a layout regression shows up as an OOM long before
// the assertion would.
func TestScale16x16TorusBuildBudget(t *testing.T) {
	cfg := scale16Cfg()
	spec, err := topology.ParseSpec(string(cfg.Topology))
	if err != nil {
		t.Fatal(err)
	}
	routers := spec.Routers()
	if routers != 256 {
		t.Fatalf("torus16x16 has %d routers, want 256", routers)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if got := len(s.wl.Streams); got < 10000 {
		t.Errorf("fabric carries %d concurrent streams, want ≥ 10000", got)
	}
	heap := after.HeapAlloc - before.HeapAlloc
	perRouter := heap / uint64(routers)
	t.Logf("heap %d B for %d routers and %d streams → %d B/router",
		heap, routers, len(s.wl.Streams), perRouter)
	// Budget: the current layout builds at ~160 KiB/router (router slabs +
	// 4 NIs/sinks + ~48 streams per router); 512 KiB leaves headroom for
	// allocator noise without letting a per-VC or per-stream map creep in.
	if perRouter > 512<<10 {
		t.Errorf("construction cost %d B/router exceeds the 512 KiB budget", perRouter)
	}
	runtime.KeepAlive(s)
}

// TestScale16x16TorusReplayIdentical runs the 16×16 torus for a short
// deterministic window, checkpoints, and requires (a) a second same-seed
// run to produce a byte-identical checkpoint and (b) a restore followed by
// an immediate re-checkpoint to reproduce the bytes again — the
// determinism contract at 64× the paper's fabric size.
func TestScale16x16TorusReplayIdentical(t *testing.T) {
	cfg := scale16Cfg()
	// Half a frame interval is enough simulated time for thousands of worms
	// to be in flight across the torus while keeping the test cheap enough
	// for the race-instrumented CI suite.
	at := cfg.FrameInterval / 2
	snap := func() []byte {
		s, err := NewSim(cfg)
		if err != nil {
			t.Fatalf("NewSim: %v", err)
		}
		s.RunTo(at)
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		return buf.Bytes()
	}
	a, b := snap(), snap()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed 16×16 torus replay diverged (%d vs %d checkpoint bytes)", len(a), len(b))
	}
	restored, err := RestoreSim(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("RestoreSim: %v", err)
	}
	var again bytes.Buffer
	if err := restored.WriteCheckpoint(&again); err != nil {
		t.Fatalf("re-checkpoint after restore: %v", err)
	}
	if !bytes.Equal(a, again.Bytes()) {
		t.Fatalf("restore → re-checkpoint not byte-identical (%d vs %d bytes)", len(a), len(again.Bytes()))
	}
}
