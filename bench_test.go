package mediaworm_test

import (
	"fmt"
	"io"
	"testing"

	"mediaworm"
	"mediaworm/internal/experiments"
)

// Benchmarks regenerate each of the paper's tables and figures at a reduced
// video time-base (see Options.Scale); cmd/paperfigs runs the same code at
// higher fidelity. One benchmark per table/figure, as per DESIGN.md §6.
//
// Run them all with:
//
//	go test -bench=. -benchmem
func benchOpt() experiments.Options {
	return experiments.Options{Scale: 0.05, WarmupIntervals: 2, MeasureIntervals: 5, Seed: 1}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, _, err := experiments.Fig5Table2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tab, err := experiments.Fig5Table2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		tab.Fprint(io.Discard)
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig7(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable3(benchOpt()).Fprint(io.Discard)
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
		experiments.Fig9BestEffort(fig, io.Discard)
	}
}

// BenchmarkSweepSerialVsParallel measures the worker-pool speedup on the
// Fig. 3 sweep (10 independent simulation points) at widths 1/2/4/8,
// reporting throughput as points/sec. Output is byte-identical at every
// width — only wall clock changes — and the speedup ceiling is GOMAXPROCS:
// on a single-core runner every width degenerates to serial throughput.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	points := 2 * len(experiments.Fig3Loads) // policies × loads
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := benchOpt()
			opt.Parallel = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fig, err := experiments.Fig3(opt)
				if err != nil {
					b.Fatal(err)
				}
				fig.Fprint(io.Discard)
			}
			b.ReportMetric(float64(points*b.N)/b.Elapsed().Seconds(), "points/sec")
		})
	}
}

// BenchmarkSingleRun measures the cost of one simulation point — the unit
// every figure sweep is built from.
func BenchmarkSingleRun(b *testing.B) {
	cfg := mediaworm.DefaultConfig().Scale(0.05)
	cfg.Warmup = 2 * cfg.FrameInterval
	cfg.Measure = 5 * cfg.FrameInterval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mediaworm.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead compares one simulation point with tracing
// disabled (the default; instrumentation reduces to nil-pointer checks)
// against the same point with the full observability subsystem armed. The
// disabled variant is the ISSUE's <5%-overhead contract surface; compare
// against BenchmarkSingleRun and run with -benchmem to see the disabled
// path add zero allocations.
func BenchmarkTraceOverhead(b *testing.B) {
	base := mediaworm.DefaultConfig().Scale(0.05)
	base.RTShare = 0.8
	base.Warmup = 2 * base.FrameInterval
	base.Measure = 5 * base.FrameInterval
	for _, bc := range []struct {
		name  string
		trace mediaworm.TraceConfig
	}{
		{"disabled", mediaworm.TraceConfig{}},
		{"enabled", mediaworm.TraceConfig{Enabled: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := base
			cfg.Trace = bc.trace
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mediaworm.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation and extension benches (DESIGN.md §6 "ablation benches for the
// design choices DESIGN.md calls out").

func BenchmarkAblationAllocator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationAllocator(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkAblationEndpointVCs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationEndpointVCs(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkAblationSourcePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationSourcePolicy(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationScheduler(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkExtGoP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ExtGoP(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkExtTetrahedral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.ExtTetrahedral(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(io.Discard)
	}
}

func BenchmarkExtDynamicPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtDynamicPartition(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		experiments.FprintDynPart(res, io.Discard)
	}
}
