package mediaworm

import (
	"fmt"
	"time"

	"mediaworm/internal/topology"
)

// Policy selects the scheduling discipline at the router's bandwidth
// multiplexers.
type Policy string

const (
	// FIFO is the conventional wormhole router's arrival-order scheduler —
	// the paper's baseline.
	FIFO Policy = "fifo"
	// RoundRobin cycles over virtual channels.
	RoundRobin Policy = "round-robin"
	// VirtualClock is the rate-based scheduler that makes the router a
	// MediaWorm router.
	VirtualClock Policy = "virtual-clock"
	// WRR is weighted round-robin: each VC gets weight flits per rotation.
	WRR Policy = "wrr"
	// DRR is deficit round-robin (Shreedhar–Varghese): quantum·weight flits
	// of credit per rotation, unspent credit forfeited on an empty queue.
	DRR Policy = "drr"
	// WF2Q is WF²Q+ — worst-case fair weighted fair queueing with virtual
	// eligibility, the tightest packet approximation of fluid GPS.
	WF2Q Policy = "wf2q"
	// SPWRR is hierarchical strict-priority across tiers with weighted
	// round-robin inside each tier; real-time VCs occupy the top tier.
	SPWRR Policy = "sp+wrr"
)

// validPolicy reports whether p names a known scheduling discipline.
func validPolicy(p Policy) bool {
	switch p {
	case FIFO, RoundRobin, VirtualClock, WRR, DRR, WF2Q, SPWRR:
		return true
	}
	return false
}

// TrafficClass selects the real-time traffic type.
type TrafficClass string

const (
	// VBR is variable-bit-rate MPEG-2-like video (frame size drawn from a
	// normal distribution).
	VBR TrafficClass = "vbr"
	// CBR is constant-bit-rate video (fixed frame size).
	CBR TrafficClass = "cbr"
)

// Topology selects the network shape: one of the fixed paper topologies
// below, or a generator spec like "mesh4x4", "torus8x8", "clos8x4x8" —
// optionally suffixed with "c<n>" (endpoints per mesh/torus router,
// default 4) and "l<n>" (lanes per channel) — parsed by
// internal/topology.ParseSpec. Meshes and tori route dimension-order;
// tori add dateline VC classes for deadlock freedom, which requires at
// least 2 VCs in every class partition.
type Topology string

const (
	// SingleSwitch is one n-port router with one endpoint per port
	// (the paper's §5.1–§5.6 configuration).
	SingleSwitch Topology = "single-switch"
	// FatMesh2x2 is the paper's 4-switch fat mesh: 8-port routers, four
	// endpoints each, two parallel physical links between adjacent
	// switches (§3.4, §5.7).
	FatMesh2x2 Topology = "fat-mesh-2x2"
	// Tetrahedral is Horst's fully connected 4-switch TNet cluster, which
	// §3.4 lists alongside fat topologies: 16 endpoints, one hop between
	// any pair of switches.
	Tetrahedral Topology = "tetrahedral"
)

// Config describes one MediaWorm simulation run: router architecture,
// workload mix, and measurement window. DefaultConfig returns the paper's
// Table 1 parameters.
type Config struct {
	// Topology of the fabric.
	Topology Topology
	// Lanes overrides the generated topologies' parallel physical links per
	// channel (0 keeps the spec's own lane count, default 1). Ignored by the
	// fixed paper topologies.
	Lanes int
	// Ports per router (8 in the paper). For FatMesh2x2 it must be 8.
	// Generated topologies derive their port plan from the spec and ignore
	// this.
	Ports int
	// VCs per physical channel and the scheduling policy at the router's
	// multiplexers.
	VCs    int
	Policy Policy
	// FullCrossbar selects the (n·m × n·m) crossbar instead of the
	// multiplexed (n × n) one (§3.2, Fig. 6).
	FullCrossbar bool
	// BufferDepth is the per-VC input buffer in flits; StageDepth the
	// output staging buffer.
	BufferDepth, StageDepth int

	// LinkBandwidthBps is the physical channel bandwidth (400 Mb/s in most
	// experiments, 100 Mb/s in the PCS comparison). FlitBits is the flit
	// size (32).
	LinkBandwidthBps float64
	FlitBits         int

	// Load is the offered input-link load as a fraction of link bandwidth.
	// RTShare is x/(x+y), the real-time fraction of that load; virtual
	// channels are partitioned in the same proportion (§4.2.3).
	Load    float64
	RTShare float64
	// Class is the real-time traffic type.
	Class TrafficClass
	// MsgFlits is the wormhole message size in flits, header included (20).
	MsgFlits int
	// FrameBytes/FrameBytesSD/FrameInterval shape the video streams
	// (16666 B ± 3333 B every 33 ms ≈ 4 Mb/s MPEG-2).
	FrameBytes, FrameBytesSD float64
	FrameInterval            time.Duration

	// Warmup is discarded; Measure is the post-warmup measurement window.
	Warmup, Measure time.Duration
	// Seed drives all randomness; identical configs produce identical
	// results.
	Seed uint64

	// Ablation knobs (see DESIGN.md §3). Zero values select the paper
	// model: two allocator iterations, shared endpoint VCs, source NIs
	// following the router policy.

	// AllocatorIterations is the switch-allocation depth (0 → 2).
	AllocatorIterations int
	// ExclusiveEndpointVCs reverts endpoint output VCs to per-message
	// exclusive ownership.
	ExclusiveEndpointVCs bool
	// SourcePolicy overrides the injection-link scheduler ("" follows
	// Policy).
	SourcePolicy Policy
	// Faults arms the fault-injection and resilience layer. The zero value
	// disables it — a perfectly reliable fabric, the paper's assumption.
	Faults FaultsConfig
	// VBRModel selects the VBR frame-size process: VBRNormal (the paper's
	// independent normal draws; "" means this) or VBRGoP (MPEG
	// Group-of-Pictures I/P/B structure with per-stream random phase).
	VBRModel VBRModel
	// PlayoutBufferFrames sizes the modeled video client's jitter buffer
	// for the deadline-miss metric (Result.Playout). 0 disables it.
	PlayoutBufferFrames int
	// Sched parameterizes the weighted disciplines (WRR/DRR/WF²Q+/SP+WRR).
	// The zero value gives every VC weight 1. Ignored by FIFO, RoundRobin
	// and VirtualClock.
	Sched SchedConfig
	// Policing arms the srTCM meter + WRED early-dropper chain at every
	// source NI's injection point. The zero value disables it — real-time
	// messages inject unconditionally, the paper's model.
	Policing PolicingConfig
	// Trace arms the observability subsystem (internal/obs). The zero value
	// disables it: the run pays one nil-check per instrumentation site and
	// allocates nothing.
	Trace TraceConfig
}

// SchedConfig carries the weighted disciplines' parameters. Weights apply
// per VC across the real-time/best-effort partition (real-time VCs are
// [0, RTVCs)); under SP+WRR the partition doubles as the priority tiers.
type SchedConfig struct {
	// RTWeight and BEWeight are the per-VC weights of the real-time and
	// best-effort partitions (0 → 1 each).
	RTWeight, BEWeight int
	// Quantum is DRR's base credit in flits per weight unit (0 → 1).
	Quantum int
}

func (s *SchedConfig) validate() error {
	if s.RTWeight < 0 || s.BEWeight < 0 || s.Quantum < 0 {
		return fmt.Errorf("mediaworm: negative scheduler parameters %+v", *s)
	}
	return nil
}

// PolicingConfig configures the per-NI srTCM token-bucket meter and the
// color-aware WRED dropper in front of the injection queues. Only real-time
// messages are metered; best-effort traffic is regulated by backpressure
// alone. A dropped message keeps its frame from ever completing reassembly,
// which Result.Policing reports as the delivered-frame ratio.
type PolicingConfig struct {
	// Enabled arms the meter + dropper chain.
	Enabled bool
	// CIRFactor scales each source's committed rate relative to its nominal
	// real-time injection rate Load·RTShare·LinkBandwidth (0 → 1.2, leaving
	// headroom for VBR frame-size variance before traffic colors yellow).
	CIRFactor float64
	// CBSFlits and EBSFlits are the committed and excess burst depths in
	// flits (0 → one nominal frame's wire flits and half a frame
	// respectively — the workload's natural burst unit).
	CBSFlits, EBSFlits int
	// DropExp is the WRED backlog-EWMA weight exponent: avg moves by
	// (backlog − avg)/2^DropExp per metered arrival (0 → 4).
	DropExp int
}

func (p *PolicingConfig) validate() error {
	switch {
	case p.CIRFactor < 0:
		return fmt.Errorf("mediaworm: Policing.CIRFactor = %v", p.CIRFactor)
	case p.CBSFlits < 0 || p.EBSFlits < 0:
		return fmt.Errorf("mediaworm: negative policing burst sizes %d/%d", p.CBSFlits, p.EBSFlits)
	case p.DropExp < 0:
		return fmt.Errorf("mediaworm: Policing.DropExp = %d", p.DropExp)
	}
	return nil
}

// TraceConfig configures flit-lifecycle tracing and metrics collection.
type TraceConfig struct {
	// Enabled turns tracing on. Result.Trace then carries the capture.
	Enabled bool
	// EventCap bounds the trace ring buffer in events (0 → 65536). When a
	// run emits more, the oldest events are overwritten and counted as
	// dropped rather than growing memory without bound.
	EventCap int
	// MetricsInterval is the simulated time between metrics snapshots.
	// 0 takes only the final end-of-run snapshot.
	MetricsInterval time.Duration
}

func (t *TraceConfig) validate() error {
	switch {
	case t.EventCap < 0:
		return fmt.Errorf("mediaworm: Trace.EventCap = %d", t.EventCap)
	case t.MetricsInterval < 0:
		return fmt.Errorf("mediaworm: Trace.MetricsInterval = %v", t.MetricsInterval)
	}
	return nil
}

// FaultsConfig describes the faults injected into a run and the resilience
// mechanisms armed against them. All fault schedules derive from Config.Seed,
// so a faulted run is exactly as reproducible as a healthy one.
type FaultsConfig struct {
	// LinkMTBF and LinkMTTR drive stochastic up/down churn on every
	// switch-to-switch link: exponential up-times with mean LinkMTBF,
	// exponential outages with mean LinkMTTR. Both must be positive to
	// enable churn. Single-switch topologies have no transit links.
	LinkMTBF, LinkMTTR time.Duration
	// FlitCorruptionProb corrupts each transmitted flit independently with
	// this probability; a corrupted flit kills its whole message (wormhole
	// has no flit-level recovery).
	FlitCorruptionProb float64
	// Retransmit enables NI-level end-to-end message retransmission with
	// capped exponential backoff.
	Retransmit bool
	// RetransmitTimeout is the first-attempt delivery deadline
	// (0 → two frame intervals).
	RetransmitTimeout time.Duration
	// MaxRetransmits bounds total delivery attempts per message (0 → 4).
	MaxRetransmits int
	// WatchdogCycles arms the progress watchdog: after this many cycles
	// with flits in flight but no flit motion, the run reports a deadlock
	// with its blocked-VC wait-for cycle instead of hanging. 0 picks a
	// default (50000 cycles) whenever any fault is enabled; negative
	// disables the watchdog.
	WatchdogCycles int
	// WatchdogRecover additionally breaks each detected deadlock by killing
	// the youngest message in the cycle. Pair with Retransmit so the victim
	// is resent rather than lost.
	WatchdogRecover bool
}

// enabled reports whether any fault or resilience mechanism is armed.
func (f *FaultsConfig) enabled() bool {
	return f.LinkMTBF > 0 || f.FlitCorruptionProb > 0 || f.Retransmit ||
		f.WatchdogCycles != 0
}

func (f *FaultsConfig) validate() error {
	switch {
	case (f.LinkMTBF > 0) != (f.LinkMTTR > 0):
		return fmt.Errorf("mediaworm: LinkMTBF and LinkMTTR must be set together")
	case f.LinkMTBF < 0 || f.LinkMTTR < 0:
		return fmt.Errorf("mediaworm: negative link churn times")
	case f.FlitCorruptionProb < 0 || f.FlitCorruptionProb > 1:
		return fmt.Errorf("mediaworm: FlitCorruptionProb = %v", f.FlitCorruptionProb)
	case f.RetransmitTimeout < 0:
		return fmt.Errorf("mediaworm: RetransmitTimeout = %v", f.RetransmitTimeout)
	case f.MaxRetransmits < 0:
		return fmt.Errorf("mediaworm: MaxRetransmits = %d", f.MaxRetransmits)
	}
	return nil
}

// VBRModel names a VBR frame-size process.
type VBRModel string

const (
	// VBRNormal draws each frame size independently from
	// Normal(FrameBytes, FrameBytesSD) — §4.2.1 of the paper.
	VBRNormal VBRModel = "normal"
	// VBRGoP uses an MPEG Group-of-Pictures pattern (IBBPBBPBBPBB, 5:3:1
	// I:P:B size ratios) scaled to FrameBytes, a structured-burstiness
	// extension of the paper's workload.
	VBRGoP VBRModel = "gop"
)

// DefaultConfig returns the paper's Table 1 single-switch configuration at
// the given load and mix: 8×8 switch, 32-bit flits, 20-flit messages,
// 400 Mb/s links, 16 VCs, Virtual Clock scheduling, VBR traffic.
func DefaultConfig() Config {
	return Config{
		Topology:            SingleSwitch,
		Ports:               8,
		VCs:                 16,
		Policy:              VirtualClock,
		BufferDepth:         20,
		StageDepth:          4,
		LinkBandwidthBps:    400e6,
		FlitBits:            32,
		Load:                0.8,
		RTShare:             1.0,
		Class:               VBR,
		MsgFlits:            20,
		FrameBytes:          16666,
		FrameBytesSD:        3333,
		FrameInterval:       33 * time.Millisecond,
		Warmup:              66 * time.Millisecond,
		Measure:             330 * time.Millisecond,
		Seed:                1,
		PlayoutBufferFrames: 2,
	}
}

// Scale shrinks the video time base by factor (frames and intervals both
// divided by f), preserving per-stream bandwidth and, to first order, the
// shape of every result while cutting simulated cycles by the same factor.
// Reported intervals scale with 1/f; the experiment harness normalizes them
// back to the paper's 33 ms time base. Warmup and Measure shrink too.
func (c Config) Scale(f float64) Config {
	if f <= 0 || f > 1 {
		return c
	}
	c.FrameBytes *= f
	c.FrameBytesSD *= f
	c.FrameInterval = time.Duration(float64(c.FrameInterval) * f)
	c.Warmup = time.Duration(float64(c.Warmup) * f)
	c.Measure = time.Duration(float64(c.Measure) * f)
	return c
}

// topologySpec resolves the Topology name (and Lanes override) into a
// generator spec. Legacy names resolve to their fixed-kind specs.
func (c *Config) topologySpec() (topology.Spec, error) {
	spec, err := topology.ParseSpec(string(c.Topology))
	if err != nil {
		return spec, fmt.Errorf("mediaworm: %w", err)
	}
	if c.Lanes > 0 {
		spec.Lanes = c.Lanes
	}
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("mediaworm: %w", err)
	}
	return spec, nil
}

// Validate reports the first problem with the configuration.
func (c *Config) Validate() error {
	if _, err := c.topologySpec(); err != nil {
		return err
	}
	switch {
	case c.Lanes < 0:
		return fmt.Errorf("mediaworm: Lanes = %d", c.Lanes)
	case c.Ports < 2:
		return fmt.Errorf("mediaworm: Ports = %d", c.Ports)
	case (c.Topology == FatMesh2x2 || c.Topology == Tetrahedral) && c.Ports != 8:
		return fmt.Errorf("mediaworm: %s needs 8-port routers", c.Topology)
	case c.VCs < 1:
		return fmt.Errorf("mediaworm: VCs = %d", c.VCs)
	case !validPolicy(c.Policy):
		return fmt.Errorf("mediaworm: unknown policy %q", c.Policy)
	case c.BufferDepth < 1 || c.StageDepth < 1:
		return fmt.Errorf("mediaworm: buffer depths %d/%d", c.BufferDepth, c.StageDepth)
	case c.LinkBandwidthBps <= 0:
		return fmt.Errorf("mediaworm: link bandwidth %v", c.LinkBandwidthBps)
	case c.FlitBits < 8:
		return fmt.Errorf("mediaworm: FlitBits = %d", c.FlitBits)
	case c.Load <= 0 || c.Load > 1.5:
		return fmt.Errorf("mediaworm: Load = %v", c.Load)
	case c.RTShare < 0 || c.RTShare > 1:
		return fmt.Errorf("mediaworm: RTShare = %v", c.RTShare)
	case c.Class != VBR && c.Class != CBR:
		return fmt.Errorf("mediaworm: unknown class %q", c.Class)
	case c.MsgFlits < 1:
		return fmt.Errorf("mediaworm: MsgFlits = %d", c.MsgFlits)
	case c.FrameBytes <= 0 || c.FrameBytesSD < 0:
		return fmt.Errorf("mediaworm: frame size %v ± %v", c.FrameBytes, c.FrameBytesSD)
	case c.FrameInterval <= 0:
		return fmt.Errorf("mediaworm: FrameInterval = %v", c.FrameInterval)
	case c.Warmup < 0 || c.Measure <= 0:
		return fmt.Errorf("mediaworm: window %v/%v", c.Warmup, c.Measure)
	case c.AllocatorIterations < 0 || c.AllocatorIterations > 2:
		return fmt.Errorf("mediaworm: AllocatorIterations = %d", c.AllocatorIterations)
	case c.SourcePolicy != "" && !validPolicy(c.SourcePolicy):
		return fmt.Errorf("mediaworm: unknown source policy %q", c.SourcePolicy)
	case c.VBRModel != "" && c.VBRModel != VBRNormal && c.VBRModel != VBRGoP:
		return fmt.Errorf("mediaworm: unknown VBR model %q", c.VBRModel)
	case c.PlayoutBufferFrames < 0:
		return fmt.Errorf("mediaworm: PlayoutBufferFrames = %d", c.PlayoutBufferFrames)
	}
	if err := c.Sched.validate(); err != nil {
		return err
	}
	if err := c.Policing.validate(); err != nil {
		return err
	}
	if err := c.Trace.validate(); err != nil {
		return err
	}
	return c.Faults.validate()
}

// CyclePeriod returns the flit cycle time implied by the link bandwidth.
func (c *Config) CyclePeriod() time.Duration {
	return time.Duration(float64(c.FlitBits) / c.LinkBandwidthBps * 1e9)
}
