package mediaworm

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mediaworm/internal/core"
	"mediaworm/internal/fault"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/obs"
	"mediaworm/internal/police"
	"mediaworm/internal/rng"
	"mediaworm/internal/sim"
	"mediaworm/internal/snapshot"
	"mediaworm/internal/stats"
	"mediaworm/internal/topology"
	"mediaworm/internal/traffic"
)

// Sim is a stepwise simulation: the same run Run executes in one shot, but
// pausable between events. NewSim builds it, RunTo advances the clock, and
// Finish completes the measurement window, drains, and returns the Result.
//
// Between RunTo calls the simulation sits at a clean event boundary, so its
// complete state can be serialized (WriteCheckpoint) and later resurrected
// in a fresh process (RestoreSim); a restored run replays byte-identically
// to the uninterrupted one. See DESIGN.md §14.
type Sim struct {
	cfg Config
	eng *sim.Engine   //mw:snapcover — clock serialized scalar-wise in secClock; the calendar re-arms via ScheduleRestored
	net *topology.Net //mw:snapcover — immutable wiring rebuilt by NewSim; its routers/NIs/sinks serialize in their own sections
	wl  *traffic.Workload

	intervals *stats.IntervalTracker
	be        *stats.BestEffort
	playout   *stats.PlayoutTracker
	warmup    sim.Time //mw:snapcover — derived from cfg by NewSim
	stop      sim.Time //mw:snapcover — derived from cfg by NewSim

	// Fault/resilience/trace wiring (absent when disabled). Runs using any
	// of these execute normally but refuse to checkpoint.
	trc      *obs.Tracer            //mw:snapcover — checkpointable() refuses traced runs
	ledger   *stats.FrameLedger     //mw:snapcover — rebuilt by NewSim; serialized via FrameLedger.EncodeState when policing is armed, and fault runs refuse checkpoints
	retx     *network.Retransmitter //mw:snapcover — nil when checkpointing: checkpointable() refuses fault-enabled runs
	injector *fault.Injector        //mw:snapcover — nil when checkpointing: checkpointable() refuses fault-enabled runs

	finished bool
}

// Snapshot section ids. New sections append; renumbering is a version bump.
const (
	secConfig uint16 = iota + 1
	secClock
	secMessages
	secWorkload
	secFabric
	secRouters
	secNIs
	secSinks
	secStats
)

// NewSim validates cfg and builds the full simulation — fabric, workload,
// measurement probes — with the first events armed but nothing executed.
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kind, err := schedKind(cfg.Policy)
	if err != nil {
		return nil, err
	}
	class, err := flitClass(cfg.Class)
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	// trc is nil unless tracing is enabled; every layer below takes the
	// nil tracer as "observability off".
	trc := obs.New(obs.Options{
		Enabled:         cfg.Trace.Enabled,
		EventCap:        cfg.Trace.EventCap,
		MetricsInterval: cfg.Trace.MetricsInterval,
	})
	trc.RegisterEngine(eng)
	rtVCs := traffic.PartitionVCs(cfg.VCs, cfg.RTShare)
	rcfg := core.Config{
		Ports:                cfg.Ports,
		VCs:                  cfg.VCs,
		RTVCs:                rtVCs,
		BufferDepth:          cfg.BufferDepth,
		StageDepth:           cfg.StageDepth,
		FullCrossbar:         cfg.FullCrossbar,
		Policy:               kind,
		Sched:                schedParams(cfg, rtVCs),
		Period:               sim.Time(cfg.CyclePeriod().Nanoseconds()),
		AllocatorIterations:  cfg.AllocatorIterations,
		ExclusiveEndpointVCs: cfg.ExclusiveEndpointVCs,
		Tracer:               trc,
	}
	spec, err := cfg.topologySpec()
	if err != nil {
		return nil, err
	}
	net, err := topology.Build(eng, spec, rcfg)
	if err != nil {
		return nil, err
	}
	net.Fabric.SetTracer(trc)
	if cfg.SourcePolicy != "" && cfg.SourcePolicy != cfg.Policy {
		srcKind, err := schedKind(cfg.SourcePolicy)
		if err != nil {
			return nil, err
		}
		for _, ni := range net.NIs {
			ni.SetPolicyParams(srcKind, rcfg.Sched)
		}
	}
	if cfg.Policing.Enabled {
		mc, dc := policingParams(cfg)
		src := rng.NewStream(cfg.Seed, "police")
		for i, ni := range net.NIs {
			ni.SetPolicer(police.NewPolicer(mc, dc, src.Split(uint64(i))))
		}
	}
	policed := cfg.Policing.Enabled

	warmup := sim.Time(cfg.Warmup.Nanoseconds())
	stop := warmup + sim.Time(cfg.Measure.Nanoseconds())
	s := &Sim{cfg: cfg, eng: eng, net: net, warmup: warmup, stop: stop, trc: trc}

	// Fault-injection and resilience wiring (absent when Faults is zero).
	if cfg.Faults.enabled() {
		fc := cfg.Faults
		wd := fc.WatchdogCycles
		if wd == 0 {
			wd = 50000
		}
		if wd > 0 {
			net.Fabric.SetWatchdog(wd, fc.WatchdogRecover)
		}
		if fc.Retransmit {
			timeout := fc.RetransmitTimeout
			if timeout == 0 {
				timeout = 2 * cfg.FrameInterval
			}
			attempts := fc.MaxRetransmits
			if attempts == 0 {
				attempts = 4
			}
			s.retx = network.NewRetransmitter(net.Fabric,
				sim.Time(timeout.Nanoseconds()), attempts)
		}
		s.injector = fault.NewInjector(eng, net.Fabric, rng.NewStream(cfg.Seed, "fault"))
		s.injector.Tracer = trc
		if fc.LinkMTBF > 0 {
			for _, l := range net.TransitLinks() {
				s.injector.Churn(fault.Link{
					A: net.Routers[l.A], APort: l.APort,
					B: net.Routers[l.B], BPort: l.BPort,
				}, sim.Time(fc.LinkMTBF.Nanoseconds()), sim.Time(fc.LinkMTTR.Nanoseconds()), stop)
			}
		}
		if fc.FlitCorruptionProb > 0 {
			s.injector.CorruptFlits(fc.FlitCorruptionProb)
		}
		s.ledger = stats.NewFrameLedger()
	}
	// Policing discards whole messages at injection, so their frames never
	// finish reassembly; the ledger makes that loss visible as a
	// delivered-frame ratio instead of silently shrinking the sample count.
	if policed && s.ledger == nil {
		s.ledger = stats.NewFrameLedger()
	}

	s.intervals = stats.NewIntervalTracker(warmup)
	s.be = stats.NewBestEffort(warmup)
	if cfg.PlayoutBufferFrames > 0 {
		s.playout = stats.NewPlayoutTracker(
			sim.Time(cfg.FrameInterval.Nanoseconds()), cfg.PlayoutBufferFrames, warmup)
	}
	for _, sk := range net.Sinks {
		sk.OnFrame = func(stream, frame int, at sim.Time) {
			s.intervals.Observe(stream, at)
			if s.playout != nil {
				s.playout.Observe(stream, frame, at)
			}
			if s.ledger != nil {
				s.ledger.Delivered(stream)
			}
		}
		sk.OnMessage = func(m *flit.Message, at sim.Time) {
			if m.Class == flit.BestEffort {
				s.be.Delivered(m.Injected, at)
			}
		}
	}
	mix := traffic.MixConfig{
		Load:           cfg.Load,
		RTShare:        cfg.RTShare,
		Class:          class,
		LinkBitsPerSec: cfg.LinkBandwidthBps,
		FlitBits:       cfg.FlitBits,
		MsgFlits:       cfg.MsgFlits,
		FrameBytes:     cfg.FrameBytes,
		FrameBytesSD:   cfg.FrameBytesSD,
		Interval:       sim.Time(cfg.FrameInterval.Nanoseconds()),
		VCs:            cfg.VCs,
		RTVCs:          rtVCs,
		Stop:           stop,
		Seed:           cfg.Seed,
		GoP:            cfg.VBRModel == VBRGoP,
	}
	s.wl, err = traffic.Apply(eng, net, mix)
	if err != nil {
		return nil, err
	}
	for _, src := range s.wl.BESources {
		src.OnInject = func(m *flit.Message) { s.be.Injected(m.Injected) }
	}
	if s.ledger != nil {
		for _, st := range s.wl.Streams {
			st.OnEmit = func(stream, frame int) { s.ledger.Emitted(stream) }
		}
	}
	return s, nil
}

// Config returns the run's configuration.
func (s *Sim) Config() Config { return s.cfg }

// Now returns the current simulated time.
func (s *Sim) Now() time.Duration {
	return time.Duration(s.eng.Now()) //mw:simtime — ticks are nanoseconds; public API speaks time.Duration
}

// End returns the end of the measurement window (warmup + measure).
func (s *Sim) End() time.Duration {
	return time.Duration(s.stop) //mw:simtime — ticks are nanoseconds; public API speaks time.Duration
}

// RunTo advances the simulation to min(t, End()), leaving it at a clean
// event boundary — the state WriteCheckpoint serializes.
func (s *Sim) RunTo(t time.Duration) {
	horizon := sim.Time(t.Nanoseconds())
	if horizon > s.stop {
		horizon = s.stop
	}
	if horizon > s.eng.Now() {
		s.eng.Run(horizon)
	}
}

// Finish runs through the rest of the measurement window, drains in-flight
// traffic, and assembles the Result. A Sim finishes exactly once.
func (s *Sim) Finish() (Result, error) {
	if s.finished {
		return Result{}, fmt.Errorf("mediaworm: simulation already finished")
	}
	s.finished = true
	// Run through the measurement window, snapshot the best-effort backlog
	// (the saturation signal), then let in-flight traffic drain (bounded:
	// generation stops at stop).
	s.eng.Run(s.stop)
	injAtStop, delAtStop := s.be.Counts()
	s.eng.Drain()
	// A watchdog trip without recovery leaves the deadlocked worms' flits
	// in the fabric by design — the report stands in for the drain check.
	deadlockStopped := s.net.Fabric.Deadlock != nil && !s.cfg.Faults.WatchdogRecover
	if !deadlockStopped {
		if err := s.net.Fabric.CheckDrained(); err != nil {
			return Result{}, fmt.Errorf("mediaworm: %w", err)
		}
	}

	var sunk uint64
	for _, sk := range s.net.Sinks {
		sunk += sk.FlitsReceived
	}
	inj, del := s.be.Counts()
	res := Result{
		MeanDeliveryIntervalMs:   s.intervals.MeanMs(),
		StdDevDeliveryIntervalMs: s.intervals.StdDevMs(),
		FrameIntervals:           s.intervals.Intervals().Count(),
		Streams:                  len(s.wl.Streams),
		FlitsDelivered:           sunk,
	}
	if s.playout != nil {
		res.Playout = PlayoutResult{
			JudgedFrames: s.playout.Frames(),
			Misses:       s.playout.Misses(),
			MissRate:     s.playout.MissRate(),
		}
		if s.playout.Misses() > 0 {
			res.Playout.MeanLatenessMs = s.playout.MeanLatenessMs()
		}
	}
	if inj > 0 {
		res.BestEffort = BestEffortResult{
			MeanLatencyUs: s.be.MeanLatencyUs(),
			MaxLatencyUs:  s.be.Latency().Max(),
			Injected:      inj,
			Delivered:     del,
			Saturated:     saturatedBE(injAtStop, delAtStop),
		}
	}
	if s.cfg.Policing.Enabled {
		pr := PolicingResult{Enabled: true}
		for _, ni := range s.net.NIs {
			pr.MeterExceed += ni.MeterExceed
			pr.MeterViolate += ni.MeterViolate
			pr.Drops += ni.PoliceDrops
		}
		pr.FramesEmitted, pr.FramesDelivered = s.ledger.Counts()
		pr.DeliveredFrameRatio = s.ledger.Ratio()
		res.Policing = pr
	}
	if s.cfg.Faults.enabled() {
		rr := ResilienceResult{Enabled: true}
		for _, r := range s.net.Routers {
			rr.MessagesKilled += r.Stats().MessagesKilled
		}
		rr.FlitsDropped = s.net.Fabric.DroppedFlits()
		rr.LinkDowns, rr.LinkUps = s.injector.LinkDowns, s.injector.LinkUps
		if s.retx != nil {
			rr.Retransmissions = s.retx.Retransmissions
			rr.Recovered = s.retx.Recovered
			rr.Abandoned = s.retx.Abandoned
		}
		if s.ledger != nil {
			rr.FramesEmitted, rr.FramesDelivered = s.ledger.Counts()
			rr.DeliveredFrameRatio = s.ledger.Ratio()
		}
		rr.Deadlocks = s.net.Fabric.Deadlocks
		rr.DeadlocksBroken = s.net.Fabric.DeadlocksBroken
		if s.net.Fabric.Deadlock != nil {
			rr.DeadlockReport = s.net.Fabric.Deadlock.String()
		}
		res.Resilience = rr
	}
	if s.trc.Enabled() {
		s.trc.Snapshot(s.eng.Now())
		res.Trace = s.trc.Capture()
	}
	return res, nil
}

// checkpointable reports why the run cannot be checkpointed, or nil.
// Fault injection, retransmission, and tracing carry state the v1 format
// does not cover; refusing up front beats silently dropping it.
func (s *Sim) checkpointable() error {
	switch {
	case s.finished:
		return fmt.Errorf("mediaworm: cannot checkpoint a finished simulation")
	case s.cfg.Faults.enabled():
		return &snapshot.NotSnapshottableError{Feature: "fault injection"}
	case s.cfg.Trace.Enabled:
		return &snapshot.NotSnapshottableError{Feature: "trace capture"}
	}
	return nil
}

// WriteCheckpoint serializes the complete simulator state to out. The
// simulation is untouched and can keep running (periodic checkpointing).
func (s *Sim) WriteCheckpoint(out io.Writer) error {
	if err := s.checkpointable(); err != nil {
		return err
	}
	// Audit flit conservation before trusting our own state to disk: every
	// unit of in-flight work must be a buffered flit somewhere.
	if work, buf := s.net.Fabric.Work(), s.net.Fabric.BufferedFlits(); work != buf {
		return &snapshot.InvariantError{
			Invariant: "flit-conservation",
			Detail:    fmt.Sprintf("fabric accounts %d in-flight flits, buffers hold %d", work, buf),
		}
	}
	cfgJSON, err := json.Marshal(s.cfg)
	if err != nil {
		return fmt.Errorf("mediaworm: encoding config: %w", err)
	}

	w := snapshot.NewWriter()
	w.Begin(secConfig)
	w.Bytes(cfgJSON)
	w.End()

	w.Begin(secClock)
	w.Time(s.eng.Now())
	w.U64(s.eng.SeqCounter())
	w.U64(s.eng.Processed())
	w.End()

	tbl := flit.NewMsgTable()
	s.net.Fabric.CollectMessages(tbl)
	s.wl.CollectMessages(tbl)
	w.Begin(secMessages)
	if err := tbl.Encode(w); err != nil {
		return err
	}
	w.End()

	w.Begin(secWorkload)
	if err := s.wl.EncodeState(w, tbl); err != nil {
		return err
	}
	w.End()

	w.Begin(secFabric)
	if err := s.net.Fabric.EncodeState(w); err != nil {
		return err
	}
	w.End()

	w.Begin(secRouters)
	for _, r := range s.net.Routers {
		if err := r.EncodeState(w, tbl); err != nil {
			return err
		}
	}
	w.End()

	w.Begin(secNIs)
	for _, ni := range s.net.NIs {
		if err := ni.EncodeState(w, tbl); err != nil {
			return err
		}
	}
	w.End()

	w.Begin(secSinks)
	for _, sk := range s.net.Sinks {
		if err := sk.EncodeState(w); err != nil {
			return err
		}
	}
	w.End()

	w.Begin(secStats)
	s.intervals.EncodeState(w)
	s.be.EncodeState(w)
	if s.playout != nil {
		s.playout.EncodeState(w)
	}
	if s.ledger != nil {
		s.ledger.EncodeState(w)
	}
	w.End()

	return w.Flush(out)
}

// RestoreSim reads a checkpoint, rebuilds the simulation from its embedded
// configuration, and overlays the serialized state, re-validating the
// structural invariants (calendar integrity, flit conservation, buffer
// capacities) before returning. The restored Sim continues exactly where
// the checkpointed one stood.
func RestoreSim(in io.Reader) (*Sim, error) {
	r, err := snapshot.NewReader(in)
	if err != nil {
		return nil, err
	}
	r.Begin(secConfig)
	cfgJSON := r.Bytes()
	r.End()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("mediaworm: checkpoint config: %w", err)
	}
	s, err := NewSim(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.checkpointable(); err != nil {
		return nil, err
	}

	r.Begin(secClock)
	now := r.Time()
	seqCtr := r.U64()
	processed := r.U64()
	r.End()

	// Cancel the setup-time emit events so every pending event on the
	// rebuilt calendar comes from the checkpoint.
	s.wl.Disarm()
	if n := s.eng.Pending(); n != 0 {
		return nil, &snapshot.InvariantError{
			Invariant: "calendar-empty",
			Detail:    fmt.Sprintf("%d events pending after disarm", n),
		}
	}

	r.Begin(secMessages)
	tbl, err := flit.DecodeMsgTable(r)
	if err != nil {
		return nil, err
	}
	r.End()

	r.Begin(secWorkload)
	if err := s.wl.RestoreState(r, tbl); err != nil {
		return nil, err
	}
	r.End()

	r.Begin(secFabric)
	if err := s.net.Fabric.RestoreState(r); err != nil {
		return nil, err
	}
	r.End()

	r.Begin(secRouters)
	for _, rt := range s.net.Routers {
		if err := rt.RestoreState(r, tbl); err != nil {
			return nil, err
		}
	}
	r.End()

	r.Begin(secNIs)
	for _, ni := range s.net.NIs {
		if err := ni.RestoreState(r, tbl); err != nil {
			return nil, err
		}
	}
	r.End()

	r.Begin(secSinks)
	for _, sk := range s.net.Sinks {
		if err := sk.RestoreState(r); err != nil {
			return nil, err
		}
	}
	r.End()

	r.Begin(secStats)
	if err := s.intervals.RestoreState(r); err != nil {
		return nil, err
	}
	if err := s.be.RestoreState(r); err != nil {
		return nil, err
	}
	if s.playout != nil {
		if err := s.playout.RestoreState(r); err != nil {
			return nil, err
		}
	}
	if s.ledger != nil {
		if err := s.ledger.RestoreState(r); err != nil {
			return nil, err
		}
	}
	r.End()
	if err := r.Err(); err != nil {
		return nil, err
	}

	if err := s.eng.RestoreClock(now, seqCtr, processed); err != nil {
		return nil, &snapshot.InvariantError{Invariant: "calendar-integrity", Detail: err.Error()}
	}
	if work, buf := s.net.Fabric.Work(), s.net.Fabric.BufferedFlits(); work != buf {
		return nil, &snapshot.InvariantError{
			Invariant: "flit-conservation",
			Detail:    fmt.Sprintf("checkpoint accounts %d in-flight flits, buffers hold %d", work, buf),
		}
	}
	return s, nil
}
