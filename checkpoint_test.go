package mediaworm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"testing"
	"time"

	"mediaworm/internal/snapshot"
)

// ckptCfg returns a small, fast config exercising the checkpointed state.
func ckptCfg() Config {
	cfg := DefaultConfig().Scale(0.1)
	cfg.Measure = 8 * cfg.FrameInterval
	cfg.Warmup = 2 * cfg.FrameInterval
	cfg.Load = 0.7
	cfg.RTShare = 0.8 // mixed traffic: streams + best-effort
	return cfg
}

// resultString renders a Result for equality comparison. String formatting
// sidesteps reflect.DeepEqual's NaN ≠ NaN (jitter fields are NaN when a run
// observes fewer than two intervals).
func resultString(r Result) string { return fmt.Sprintf("%#v", r) }

// runDirect runs cfg in one shot; runInterrupted runs it to checkpointAt,
// checkpoints, restores into a fresh Sim, and finishes there. The golden
// property is that both produce identical Results.
func runInterrupted(t *testing.T, cfg Config, checkpointAt time.Duration) (Result, []byte) {
	t.Helper()
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	s.RunTo(checkpointAt)
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("WriteCheckpoint at %v: %v", checkpointAt, err)
	}
	restored, err := RestoreSim(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("RestoreSim: %v", err)
	}
	res, err := restored.Finish()
	if err != nil {
		t.Fatalf("Finish after restore: %v", err)
	}
	return res, buf.Bytes()
}

// TestCheckpointRoundTripGolden is the tentpole proof: run to T/2,
// checkpoint, restore in a fresh Sim, run to T — and get exactly the result
// of the uninterrupted run, across policies, traffic classes, topologies,
// and VBR models.
func TestCheckpointRoundTripGolden(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"virtual-clock-mixed", func(c *Config) {}},
		{"fifo-baseline", func(c *Config) { c.Policy = FIFO }},
		{"round-robin", func(c *Config) { c.Policy = RoundRobin }},
		{"cbr", func(c *Config) { c.Class = CBR; c.FrameBytesSD = 0 }},
		{"gop-vbr", func(c *Config) { c.VBRModel = VBRGoP }},
		{"pure-realtime", func(c *Config) { c.RTShare = 1.0 }},
		{"no-playout", func(c *Config) { c.PlayoutBufferFrames = 0 }},
		{"fat-mesh", func(c *Config) { c.Topology = FatMesh2x2; c.Load = 0.5 }},
		{"tetrahedral", func(c *Config) { c.Topology = Tetrahedral; c.Load = 0.5 }},
		// Generated fabrics carry 16 endpoints each, so their windows shrink
		// to keep the suite fast; the golden property is window-independent.
		{"generated-mesh", func(c *Config) {
			c.Topology = "mesh4x4c1"
			c.Load = 0.4
			c.Measure = 4 * c.FrameInterval
		}},
		{"torus-dateline", func(c *Config) {
			c.Topology = "torus4x4c1"
			c.Load = 0.4
			c.Measure = 4 * c.FrameInterval
		}},
		{"clos", func(c *Config) { c.Topology = "clos4x2"; c.Load = 0.4 }},
		{"source-policy-override", func(c *Config) { c.SourcePolicy = FIFO }},
		{"wrr-weighted", func(c *Config) {
			c.Policy = WRR
			c.Sched = SchedConfig{RTWeight: 3, BEWeight: 1}
		}},
		{"drr-weighted", func(c *Config) {
			c.Policy = DRR
			c.Sched = SchedConfig{RTWeight: 3, BEWeight: 1, Quantum: 2}
		}},
		{"wf2q", func(c *Config) {
			c.Policy = WF2Q
			c.Sched = SchedConfig{RTWeight: 2, BEWeight: 1}
		}},
		{"sp-wrr", func(c *Config) {
			c.Policy = SPWRR
			c.Sched = SchedConfig{RTWeight: 3, BEWeight: 1}
		}},
		{"policed", func(c *Config) { c.Policing.Enabled = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ckptCfg()
			tc.mut(&cfg)
			want, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got, _ := runInterrupted(t, cfg, cfg.Warmup+cfg.Measure/2)
			if resultString(got) != resultString(want) {
				t.Errorf("restored run diverged\n got: %s\nwant: %s",
					resultString(got), resultString(want))
			}
		})
	}
}

// TestCheckpointTorus8x8Golden is the scale proof for the checkpoint
// format: an 8×8 torus — 64 routers with dateline VC classes, all router
// and NI/sink state carved from the build-time arenas — checkpointed
// mid-run must restore and finish identical to the uninterrupted run, and
// the checkpoint bytes themselves must be deterministic across runs.
func TestCheckpointTorus8x8Golden(t *testing.T) {
	cfg := DefaultConfig().Scale(0.05)
	cfg.Topology = "torus8x8c1"
	cfg.Load = 0.4
	cfg.RTShare = 0.8
	cfg.Warmup = cfg.FrameInterval
	cfg.Measure = 4 * cfg.FrameInterval
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	at := cfg.Warmup + cfg.Measure/2
	got, ckpt := runInterrupted(t, cfg, at)
	if resultString(got) != resultString(want) {
		t.Errorf("restored 8×8 torus run diverged\n got: %s\nwant: %s",
			resultString(got), resultString(want))
	}
	_, again := runInterrupted(t, cfg, at)
	if !bytes.Equal(ckpt, again) {
		t.Errorf("two 8×8 torus checkpoints of the same instant differ (%d vs %d bytes)",
			len(ckpt), len(again))
	}
}

// TestCheckpointPolicedWeightedRun checkpoints mid-run with a weighted
// scheduler AND active policing: tight meter buckets force real drops
// before the checkpoint instant, so the serialized state must carry
// non-trivial token-bucket levels, WRED averages, dropper RNG positions and
// per-tier arbiter rotations for the continuation to replay byte-identically.
func TestCheckpointPolicedWeightedRun(t *testing.T) {
	cfg := ckptCfg()
	cfg.Policy = SPWRR
	cfg.Sched = SchedConfig{RTWeight: 3, BEWeight: 1}
	cfg.Load = 0.95
	cfg.Policing = PolicingConfig{Enabled: true, CBSFlits: 60, EBSFlits: 30}
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want.Policing.Drops == 0 || want.Policing.MeterViolate == 0 {
		t.Fatalf("test config too gentle: %d drops, %d violations — the checkpoint would not cover live policer state",
			want.Policing.Drops, want.Policing.MeterViolate)
	}
	if want.Policing.DeliveredFrameRatio >= 1 {
		t.Fatalf("drops recorded but delivered-frame ratio is %v", want.Policing.DeliveredFrameRatio)
	}
	got, _ := runInterrupted(t, cfg, cfg.Warmup+cfg.Measure/2)
	if resultString(got) != resultString(want) {
		t.Errorf("restored policed run diverged\n got: %s\nwant: %s",
			resultString(got), resultString(want))
	}
}

// TestCheckpointAtManyInstants checkpoints at several points through the
// run, including t=0 (nothing executed) and the exact end of the window.
func TestCheckpointAtManyInstants(t *testing.T) {
	cfg := ckptCfg()
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := cfg.Warmup + cfg.Measure
	for _, frac := range []float64{0, 0.1, 0.33, 0.5, 0.9, 1.0} {
		at := time.Duration(float64(total) * frac)
		got, _ := runInterrupted(t, cfg, at)
		if resultString(got) != resultString(want) {
			t.Errorf("checkpoint at %v (%.0f%%): diverged\n got: %s\nwant: %s",
				at, frac*100, resultString(got), resultString(want))
		}
	}
}

// TestCheckpointDeterministicBytes requires the serialized state itself to
// be deterministic: same config, same instant → byte-identical checkpoint,
// and a restore followed by an immediate re-checkpoint reproduces the same
// bytes again.
func TestCheckpointDeterministicBytes(t *testing.T) {
	cfg := ckptCfg()
	at := cfg.Warmup + cfg.Measure/2
	snap := func() []byte {
		s, err := NewSim(cfg)
		if err != nil {
			t.Fatalf("NewSim: %v", err)
		}
		s.RunTo(at)
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		return buf.Bytes()
	}
	a, b := snap(), snap()
	if !bytes.Equal(a, b) {
		t.Fatalf("two checkpoints of the same state differ (%d vs %d bytes)", len(a), len(b))
	}
	restored, err := RestoreSim(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("RestoreSim: %v", err)
	}
	var again bytes.Buffer
	if err := restored.WriteCheckpoint(&again); err != nil {
		t.Fatalf("re-checkpoint after restore: %v", err)
	}
	if !bytes.Equal(a, again.Bytes()) {
		t.Fatalf("checkpoint not idempotent across restore (%d vs %d bytes)", len(a), len(again.Bytes()))
	}
}

// TestCheckpointCorruptionRejected flips, truncates, and re-versions a real
// checkpoint and requires each mutation to be rejected with the matching
// structured error — never a panic, never a silent partial restore.
func TestCheckpointCorruptionRejected(t *testing.T) {
	cfg := ckptCfg()
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	s.RunTo(cfg.Warmup + cfg.Measure/2)
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	good := buf.Bytes()

	t.Run("flipped-bytes", func(t *testing.T) {
		for _, off := range []int{0, 9, 40, len(good) / 2, len(good) - 5, len(good) - 1} {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x40
			_, err := RestoreSim(bytes.NewReader(bad))
			var ce *snapshot.CorruptError
			if !errors.As(err, &ce) {
				t.Errorf("flip at %d: got %v, want CorruptError", off, err)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 5, 13, len(good) / 3, len(good) - 1} {
			_, err := RestoreSim(bytes.NewReader(good[:n]))
			var ce *snapshot.CorruptError
			if !errors.As(err, &ce) {
				t.Errorf("truncated to %d: got %v, want CorruptError", n, err)
			}
		}
	})
	t.Run("version-mismatch", func(t *testing.T) {
		// Patch the container version and re-seal the checksum, simulating a
		// checkpoint from a future encoder.
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(bad[8:], snapshot.Version+1)
		sum := crc32.Checksum(bad[:len(bad)-4], crc32.MakeTable(crc32.Castagnoli))
		binary.LittleEndian.PutUint32(bad[len(bad)-4:], sum)
		_, err := RestoreSim(bytes.NewReader(bad))
		var ve *snapshot.VersionError
		if !errors.As(err, &ve) {
			t.Fatalf("got %v, want VersionError", err)
		}
		if ve.Got != snapshot.Version+1 || ve.Want != snapshot.Version {
			t.Fatalf("VersionError %+v", ve)
		}
	})
	t.Run("garbage", func(t *testing.T) {
		_, err := RestoreSim(bytes.NewReader([]byte("definitely not a checkpoint file")))
		var ce *snapshot.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("got %v, want CorruptError", err)
		}
	})
}

// TestCheckpointRefusesUncoveredFeatures pins the v1 scope gate: runs with
// fault injection or tracing enabled execute normally but refuse to
// checkpoint with NotSnapshottableError.
func TestCheckpointRefusesUncoveredFeatures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"faults", func(c *Config) { c.Faults.FlitCorruptionProb = 1e-6 }},
		{"retransmit", func(c *Config) { c.Faults.Retransmit = true }},
		{"trace", func(c *Config) { c.Trace.Enabled = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ckptCfg()
			tc.mut(&cfg)
			s, err := NewSim(cfg)
			if err != nil {
				t.Fatalf("NewSim: %v", err)
			}
			s.RunTo(cfg.Warmup)
			var buf bytes.Buffer
			err = s.WriteCheckpoint(&buf)
			var nse *snapshot.NotSnapshottableError
			if !errors.As(err, &nse) {
				t.Fatalf("got %v, want NotSnapshottableError", err)
			}
		})
	}
}

// TestCheckpointAfterFinishRefused pins that a drained simulation cannot be
// checkpointed (its generators are gone; resuming it would be meaningless).
func TestCheckpointAfterFinishRefused(t *testing.T) {
	s, err := NewSim(ckptCfg())
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	if _, err := s.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := s.WriteCheckpoint(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteCheckpoint after Finish succeeded, want error")
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("second Finish succeeded, want error")
	}
}

// FuzzCheckpointRoundTrip drives random configs and random checkpoint
// instants through the golden property: interrupting never changes the
// result.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(70), uint8(80), uint8(0), uint16(50))
	f.Add(uint64(7), uint8(40), uint8(100), uint8(1), uint16(0))
	f.Add(uint64(42), uint8(90), uint8(50), uint8(2), uint16(100))
	f.Fuzz(func(t *testing.T, seed uint64, loadPct, rtPct, knobs uint8, atPermille uint16) {
		cfg := DefaultConfig().Scale(0.1)
		cfg.Measure = 4 * cfg.FrameInterval
		cfg.Warmup = cfg.FrameInterval
		cfg.Seed = seed
		cfg.Load = float64(loadPct%101)/100 + 0.05
		cfg.RTShare = float64(rtPct%101) / 100
		switch knobs % 3 {
		case 1:
			cfg.Policy = FIFO
		case 2:
			cfg.Policy = RoundRobin
			cfg.VBRModel = VBRGoP
		}
		if knobs&4 != 0 {
			cfg.Class = CBR
			cfg.FrameBytesSD = 0
		}
		if cfg.Validate() != nil {
			t.Skip()
		}
		want, err := Run(cfg)
		if err != nil {
			t.Skip() // saturated configs may legitimately fail to drain
		}
		total := cfg.Warmup + cfg.Measure
		at := time.Duration(float64(total) * float64(atPermille%1001) / 1000)
		got, _ := runInterrupted(t, cfg, at)
		if resultString(got) != resultString(want) {
			t.Errorf("seed=%d load=%.2f rt=%.2f at=%v: diverged\n got: %s\nwant: %s",
				seed, cfg.Load, cfg.RTShare, at, resultString(got), resultString(want))
		}
	})
}
