package mediaworm

import (
	"math"
	"testing"
	"time"
)

// fastCfg returns a heavily scaled config for quick API tests.
func fastCfg() Config {
	cfg := DefaultConfig().Scale(0.1)
	cfg.Measure = 10 * cfg.FrameInterval
	cfg.Warmup = 3 * cfg.FrameInterval
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CyclePeriod() != 80*time.Nanosecond {
		t.Fatalf("cycle period %v, want 80ns (32 bits at 400 Mb/s)", cfg.CyclePeriod())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Topology = "ring" },
		func(c *Config) { c.Ports = 1 },
		func(c *Config) { c.Topology = FatMesh2x2; c.Ports = 4 },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.Policy = "lifo" },
		func(c *Config) { c.BufferDepth = 0 },
		func(c *Config) { c.LinkBandwidthBps = 0 },
		func(c *Config) { c.FlitBits = 4 },
		func(c *Config) { c.Load = 0 },
		func(c *Config) { c.Load = 2 },
		func(c *Config) { c.RTShare = 1.5 },
		func(c *Config) { c.Class = "abr" },
		func(c *Config) { c.MsgFlits = 0 },
		func(c *Config) { c.FrameBytes = -1 },
		func(c *Config) { c.FrameInterval = 0 },
		func(c *Config) { c.Measure = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
		if _, err := Run(cfg); err == nil {
			t.Fatalf("Run accepted invalid config %d", i)
		}
	}
}

func TestScale(t *testing.T) {
	cfg := DefaultConfig()
	s := cfg.Scale(0.1)
	if s.FrameBytes != cfg.FrameBytes*0.1 || s.FrameInterval != cfg.FrameInterval/10 {
		t.Fatalf("scale broken: %+v", s)
	}
	// Out-of-range factors are identity.
	if cfg.Scale(0) != cfg || cfg.Scale(2) != cfg {
		t.Fatal("invalid scale factor should be identity")
	}
}

func TestRunJitterFreeAtModerateLoad(t *testing.T) {
	cfg := fastCfg()
	cfg.Load = 0.6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantD := cfg.FrameInterval.Seconds() * 1000
	if math.Abs(res.MeanDeliveryIntervalMs-wantD) > 0.1*wantD {
		t.Fatalf("d = %.3f ms, want ~%.3f", res.MeanDeliveryIntervalMs, wantD)
	}
	if res.StdDevDeliveryIntervalMs > 0.05*wantD {
		t.Fatalf("σd = %.4f ms at 0.6 load", res.StdDevDeliveryIntervalMs)
	}
	if res.Streams == 0 || res.FrameIntervals == 0 || res.FlitsDelivered == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.BestEffort.Injected != 0 {
		t.Fatal("pure real-time run reported best-effort traffic")
	}
}

func TestRunMixedTraffic(t *testing.T) {
	cfg := fastCfg()
	cfg.Load = 0.6
	cfg.RTShare = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEffort.Injected == 0 || res.BestEffort.Delivered == 0 {
		t.Fatalf("no best-effort traffic: %+v", res.BestEffort)
	}
	if res.BestEffort.Saturated {
		t.Fatal("saturated at 0.3 best-effort load")
	}
	if res.BestEffort.MeanLatencyUs <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := fastCfg()
	cfg.RTShare = 0.8
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunCBRMatchesVBRShape(t *testing.T) {
	cfg := fastCfg()
	cfg.Class = CBR
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// CBR frames are constant-size: the frame-size spacing variance
	// disappears and jitter should be essentially zero at 0.8 load.
	if res.StdDevDeliveryIntervalMs > 0.02*res.MeanDeliveryIntervalMs {
		t.Fatalf("CBR σd = %.4f ms, want ≈0", res.StdDevDeliveryIntervalMs)
	}
}

func TestRunFatMesh(t *testing.T) {
	cfg := fastCfg()
	cfg.Topology = FatMesh2x2
	cfg.Load = 0.5
	cfg.RTShare = 0.6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameIntervals == 0 {
		t.Fatal("no frames delivered over the fat mesh")
	}
}

func TestRunFullCrossbar(t *testing.T) {
	cfg := fastCfg()
	cfg.VCs = 4
	cfg.FullCrossbar = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameIntervals == 0 {
		t.Fatal("no frames delivered through the full crossbar")
	}
}

func TestRunPCSBasics(t *testing.T) {
	cfg := DefaultPCSConfig().Scale(0.1)
	cfg.Measure = 10 * cfg.FrameInterval
	cfg.Warmup = 3 * cfg.FrameInterval
	res, err := RunPCS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Established == 0 || res.FrameIntervals == 0 {
		t.Fatalf("PCS run empty: %+v", res)
	}
	wantD := cfg.FrameInterval.Seconds() * 1000
	if math.Abs(res.MeanDeliveryIntervalMs-wantD) > 0.1*wantD {
		t.Fatalf("PCS d = %.3f, want ~%.3f", res.MeanDeliveryIntervalMs, wantD)
	}
	if res.StdDevDeliveryIntervalMs > 0.05*wantD {
		t.Fatalf("PCS σd = %.4f at 0.7 load", res.StdDevDeliveryIntervalMs)
	}
}

func TestPCSAdmissionTable(t *testing.T) {
	res := PCSAdmission(8, 24, 25, 0.7, 1)
	if res.Attempts != res.Established+res.Dropped {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Established < 120 || res.Established > 140 {
		t.Fatalf("established %d at 0.7 load, want ≈140", res.Established)
	}
}

func TestPlayoutMetric(t *testing.T) {
	// Jitter-free operation: essentially no deadline misses with a 2-frame
	// buffer.
	cfg := fastCfg()
	cfg.Load = 0.6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Playout.JudgedFrames == 0 {
		t.Fatal("playout metric did not run")
	}
	if res.Playout.MissRate > 0.001 {
		t.Fatalf("miss rate %.4f at 0.6 load with a 2-frame buffer", res.Playout.MissRate)
	}
	// Overloaded FIFO router: real misses appear.
	cfg.Policy = FIFO
	cfg.Load = 0.96
	cfg.RTShare = 0.8
	over, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if over.Playout.MissRate <= res.Playout.MissRate {
		t.Fatalf("overloaded FIFO miss rate %.4f not above %.4f",
			over.Playout.MissRate, res.Playout.MissRate)
	}
	// Disabled when the buffer is 0.
	cfg.PlayoutBufferFrames = 0
	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.Playout.JudgedFrames != 0 {
		t.Fatal("playout metric ran while disabled")
	}
}

func TestRunTetrahedralTopology(t *testing.T) {
	cfg := fastCfg()
	cfg.Topology = Tetrahedral
	cfg.Load = 0.5
	cfg.RTShare = 0.7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameIntervals == 0 || res.BestEffort.Delivered == 0 {
		t.Fatalf("tetrahedral run empty: %+v", res)
	}
}

func TestRunGoPModel(t *testing.T) {
	cfg := fastCfg()
	cfg.VBRModel = VBRGoP
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameIntervals == 0 {
		t.Fatal("GoP run empty")
	}
	// GoP's structured bursts raise σd above the normal model's floor.
	cfg.VBRModel = VBRNormal
	normal, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StdDevDeliveryIntervalMs <= normal.StdDevDeliveryIntervalMs {
		t.Fatalf("GoP σd %.4f not above normal %.4f",
			res.StdDevDeliveryIntervalMs, normal.StdDevDeliveryIntervalMs)
	}
}

func TestRunSourcePolicyOverride(t *testing.T) {
	cfg := fastCfg()
	cfg.SourcePolicy = FIFO
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.SourcePolicy = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatal("bogus source policy accepted")
	}
}

func TestRunAblationKnobs(t *testing.T) {
	cfg := fastCfg()
	cfg.AllocatorIterations = 1
	cfg.ExclusiveEndpointVCs = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.AllocatorIterations = 3
	if _, err := Run(cfg); err == nil {
		t.Fatal("AllocatorIterations 3 accepted")
	}
}
