// Package mediaworm reproduces "Investigating QoS Support for Traffic Mixes
// with the MediaWorm Router" (Yum, Vaidya, Das, Sivasubramaniam — HPCA 2000)
// as a flit-level, cycle-accurate wormhole-router simulation library.
//
// The MediaWorm router is a conventional five-stage pipelined wormhole
// router with one modification: the bandwidth multiplexers schedule flits
// with the Virtual Clock rate-based algorithm instead of FIFO, giving soft
// QoS guarantees to VBR/CBR video streams mixed with best-effort traffic.
//
// Quick start:
//
//	cfg := mediaworm.DefaultConfig()
//	cfg.Load, cfg.RTShare = 0.8, 0.8 // 80% link load, 80:20 VBR:best-effort
//	res, err := mediaworm.Run(cfg)
//	// res.MeanDeliveryIntervalMs ≈ 33, res.StdDevDeliveryIntervalMs ≈ 0
//
// The full experiment harness that regenerates every figure and table of the
// paper lives in internal/experiments and is driven by cmd/paperfigs.
package mediaworm

import (
	"fmt"
	"time"

	"mediaworm/internal/core"
	"mediaworm/internal/fault"
	"mediaworm/internal/flit"
	"mediaworm/internal/network"
	"mediaworm/internal/obs"
	"mediaworm/internal/pcs"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/stats"
	"mediaworm/internal/topology"
	"mediaworm/internal/traffic"
)

func schedKind(p Policy) (sched.Kind, error) {
	switch p {
	case FIFO:
		return sched.FIFO, nil
	case RoundRobin:
		return sched.RoundRobin, nil
	case VirtualClock:
		return sched.VirtualClock, nil
	}
	return 0, fmt.Errorf("mediaworm: unknown policy %q", p)
}

func flitClass(c TrafficClass) (flit.Class, error) {
	switch c {
	case VBR:
		return flit.VBR, nil
	case CBR:
		return flit.CBR, nil
	}
	return 0, fmt.Errorf("mediaworm: unknown class %q", c)
}

// Run executes one wormhole (MediaWorm or FIFO-baseline) simulation and
// returns its measurements. Identical configs produce identical results.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	kind, err := schedKind(cfg.Policy)
	if err != nil {
		return Result{}, err
	}
	class, err := flitClass(cfg.Class)
	if err != nil {
		return Result{}, err
	}

	eng := sim.NewEngine()
	// trc is nil unless tracing is enabled; every layer below takes the
	// nil tracer as "observability off".
	trc := obs.New(obs.Options{
		Enabled:         cfg.Trace.Enabled,
		EventCap:        cfg.Trace.EventCap,
		MetricsInterval: cfg.Trace.MetricsInterval,
	})
	trc.RegisterEngine(eng)
	rtVCs := traffic.PartitionVCs(cfg.VCs, cfg.RTShare)
	rcfg := core.Config{
		Ports:                cfg.Ports,
		VCs:                  cfg.VCs,
		RTVCs:                rtVCs,
		BufferDepth:          cfg.BufferDepth,
		StageDepth:           cfg.StageDepth,
		FullCrossbar:         cfg.FullCrossbar,
		Policy:               kind,
		Period:               sim.Time(cfg.CyclePeriod().Nanoseconds()),
		AllocatorIterations:  cfg.AllocatorIterations,
		ExclusiveEndpointVCs: cfg.ExclusiveEndpointVCs,
		Tracer:               trc,
	}
	var net *topology.Net
	switch cfg.Topology {
	case SingleSwitch:
		net, err = topology.SingleSwitch(eng, rcfg)
	case FatMesh2x2:
		net, err = topology.FatMesh2x2(eng, rcfg)
	case Tetrahedral:
		net, err = topology.Tetrahedral(eng, rcfg)
	default:
		err = fmt.Errorf("mediaworm: unknown topology %q", cfg.Topology)
	}
	if err != nil {
		return Result{}, err
	}
	net.Fabric.SetTracer(trc)
	if cfg.SourcePolicy != "" && cfg.SourcePolicy != cfg.Policy {
		srcKind, err := schedKind(cfg.SourcePolicy)
		if err != nil {
			return Result{}, err
		}
		for _, ni := range net.NIs {
			ni.SetPolicy(srcKind)
		}
	}

	warmup := sim.Time(cfg.Warmup.Nanoseconds())
	stop := warmup + sim.Time(cfg.Measure.Nanoseconds())

	// Fault-injection and resilience wiring (absent when Faults is zero).
	var (
		ledger   *stats.FrameLedger
		retx     *network.Retransmitter
		injector *fault.Injector
	)
	if cfg.Faults.enabled() {
		fc := cfg.Faults
		wd := fc.WatchdogCycles
		if wd == 0 {
			wd = 50000
		}
		if wd > 0 {
			net.Fabric.SetWatchdog(wd, fc.WatchdogRecover)
		}
		if fc.Retransmit {
			timeout := fc.RetransmitTimeout
			if timeout == 0 {
				timeout = 2 * cfg.FrameInterval
			}
			attempts := fc.MaxRetransmits
			if attempts == 0 {
				attempts = 4
			}
			retx = network.NewRetransmitter(net.Fabric,
				sim.Time(timeout.Nanoseconds()), attempts)
		}
		injector = fault.NewInjector(eng, net.Fabric, rng.NewStream(cfg.Seed, "fault"))
		injector.Tracer = trc
		if fc.LinkMTBF > 0 {
			for _, l := range net.TransitLinks() {
				injector.Churn(fault.Link{
					A: net.Routers[l.A], APort: l.APort,
					B: net.Routers[l.B], BPort: l.BPort,
				}, sim.Time(fc.LinkMTBF.Nanoseconds()), sim.Time(fc.LinkMTTR.Nanoseconds()), stop)
			}
		}
		if fc.FlitCorruptionProb > 0 {
			injector.CorruptFlits(fc.FlitCorruptionProb)
		}
		ledger = stats.NewFrameLedger()
	}

	intervals := stats.NewIntervalTracker(warmup)
	be := stats.NewBestEffort(warmup)
	var playout *stats.PlayoutTracker
	if cfg.PlayoutBufferFrames > 0 {
		playout = stats.NewPlayoutTracker(
			sim.Time(cfg.FrameInterval.Nanoseconds()), cfg.PlayoutBufferFrames, warmup)
	}
	for _, s := range net.Sinks {
		s.OnFrame = func(stream, frame int, at sim.Time) {
			intervals.Observe(stream, at)
			if playout != nil {
				playout.Observe(stream, frame, at)
			}
			if ledger != nil {
				ledger.Delivered(stream)
			}
		}
		s.OnMessage = func(m *flit.Message, at sim.Time) {
			if m.Class == flit.BestEffort {
				be.Delivered(m.Injected, at)
			}
		}
	}
	mix := traffic.MixConfig{
		Load:           cfg.Load,
		RTShare:        cfg.RTShare,
		Class:          class,
		LinkBitsPerSec: cfg.LinkBandwidthBps,
		FlitBits:       cfg.FlitBits,
		MsgFlits:       cfg.MsgFlits,
		FrameBytes:     cfg.FrameBytes,
		FrameBytesSD:   cfg.FrameBytesSD,
		Interval:       sim.Time(cfg.FrameInterval.Nanoseconds()),
		VCs:            cfg.VCs,
		RTVCs:          rtVCs,
		Stop:           stop,
		Seed:           cfg.Seed,
		GoP:            cfg.VBRModel == VBRGoP,
	}
	w, err := traffic.Apply(eng, net, mix)
	if err != nil {
		return Result{}, err
	}
	for _, src := range w.BESources {
		src.OnInject = func(m *flit.Message) { be.Injected(m.Injected) }
	}
	if ledger != nil {
		for _, st := range w.Streams {
			st.OnEmit = func(stream, frame int) { ledger.Emitted(stream) }
		}
	}

	// Run through the measurement window, snapshot the best-effort backlog
	// (the saturation signal), then let in-flight traffic drain (bounded:
	// generation stops at stop).
	eng.Run(stop)
	injAtStop, delAtStop := be.Counts()
	eng.Drain()
	// A watchdog trip without recovery leaves the deadlocked worms' flits
	// in the fabric by design — the report stands in for the drain check.
	deadlockStopped := net.Fabric.Deadlock != nil && !cfg.Faults.WatchdogRecover
	if !deadlockStopped {
		if err := net.Fabric.CheckDrained(); err != nil {
			return Result{}, fmt.Errorf("mediaworm: %w", err)
		}
	}

	var sunk uint64
	for _, s := range net.Sinks {
		sunk += s.FlitsReceived
	}
	inj, del := be.Counts()
	res := Result{
		MeanDeliveryIntervalMs:   intervals.MeanMs(),
		StdDevDeliveryIntervalMs: intervals.StdDevMs(),
		FrameIntervals:           intervals.Intervals().Count(),
		Streams:                  len(w.Streams),
		FlitsDelivered:           sunk,
	}
	if playout != nil {
		res.Playout = PlayoutResult{
			JudgedFrames: playout.Frames(),
			Misses:       playout.Misses(),
			MissRate:     playout.MissRate(),
		}
		if playout.Misses() > 0 {
			res.Playout.MeanLatenessMs = playout.MeanLatenessMs()
		}
	}
	if inj > 0 {
		res.BestEffort = BestEffortResult{
			MeanLatencyUs: be.MeanLatencyUs(),
			MaxLatencyUs:  be.Latency().Max(),
			Injected:      inj,
			Delivered:     del,
			Saturated:     saturatedBE(injAtStop, delAtStop),
		}
	}
	if cfg.Faults.enabled() {
		rr := ResilienceResult{Enabled: true}
		for _, r := range net.Routers {
			rr.MessagesKilled += r.Stats().MessagesKilled
		}
		rr.FlitsDropped = net.Fabric.DroppedFlits()
		rr.LinkDowns, rr.LinkUps = injector.LinkDowns, injector.LinkUps
		if retx != nil {
			rr.Retransmissions = retx.Retransmissions
			rr.Recovered = retx.Recovered
			rr.Abandoned = retx.Abandoned
		}
		if ledger != nil {
			rr.FramesEmitted, rr.FramesDelivered = ledger.Counts()
			rr.DeliveredFrameRatio = ledger.Ratio()
		}
		rr.Deadlocks = net.Fabric.Deadlocks
		rr.DeadlocksBroken = net.Fabric.DeadlocksBroken
		if net.Fabric.Deadlock != nil {
			rr.DeadlockReport = net.Fabric.Deadlock.String()
		}
		res.Resilience = rr
	}
	if trc.Enabled() {
		trc.Snapshot(eng.Now())
		res.Trace = trc.Capture()
	}
	return res, nil
}

// saturatedBE decides Table 2's "Sat." condition from the backlog at the
// instant generation stopped: a stable queue holds only a few in-flight
// messages then, while an unstable one has accumulated a backlog that grew
// throughout the window.
func saturatedBE(injected, delivered uint64) bool {
	if injected == 0 {
		return false
	}
	backlog := float64(injected) - float64(delivered)
	return backlog > 0.05*float64(injected) && backlog > 50
}

// PCSConfig describes a pipelined-circuit-switching run (§3.5, Fig. 8):
// an 8×8 switch at 100 Mb/s with 24 VCs per channel in the paper.
type PCSConfig struct {
	Ports, VCs       int
	LinkBandwidthBps float64
	FlitBits         int
	// PipeLatency is the switch pipeline depth in cycles.
	PipeLatency int
	// Load is the provisioned input-link load; streams are established with
	// searching VC selection before traffic starts.
	Load float64
	// GroupFlits is the injection burst size (the wormhole message size
	// without the header, since PCS sends no per-message headers).
	GroupFlits               int
	FrameBytes, FrameBytesSD float64
	FrameInterval            time.Duration
	Warmup, Measure          time.Duration
	Seed                     uint64
}

// DefaultPCSConfig returns the paper's Fig. 8 PCS setup.
func DefaultPCSConfig() PCSConfig {
	return PCSConfig{
		Ports:            8,
		VCs:              24,
		LinkBandwidthBps: 100e6,
		FlitBits:         32,
		PipeLatency:      5,
		Load:             0.7,
		GroupFlits:       20,
		FrameBytes:       16666,
		FrameBytesSD:     3333,
		FrameInterval:    33 * time.Millisecond,
		Warmup:           66 * time.Millisecond,
		Measure:          330 * time.Millisecond,
		Seed:             1,
	}
}

// Scale shrinks the PCS video time base, mirroring Config.Scale.
func (c PCSConfig) Scale(f float64) PCSConfig {
	if f <= 0 || f > 1 {
		return c
	}
	c.FrameBytes *= f
	c.FrameBytesSD *= f
	c.FrameInterval = time.Duration(float64(c.FrameInterval) * f)
	c.Warmup = time.Duration(float64(c.Warmup) * f)
	c.Measure = time.Duration(float64(c.Measure) * f)
	return c
}

// RunPCS provisions connections to the target load and measures frame
// delivery jitter over the established circuits.
func RunPCS(cfg PCSConfig) (PCSResult, error) {
	if cfg.Ports < 2 || cfg.VCs < 1 || cfg.LinkBandwidthBps <= 0 || cfg.Load <= 0 {
		return PCSResult{}, fmt.Errorf("mediaworm: invalid PCS config %+v", cfg)
	}
	eng := sim.NewEngine()
	period := sim.Time(float64(cfg.FlitBits) / cfg.LinkBandwidthBps * 1e9)
	sw, err := pcs.NewSwitch(eng, pcs.Config{
		Ports: cfg.Ports, VCs: cfg.VCs, Period: period, PipeLatency: cfg.PipeLatency,
	})
	if err != nil {
		return PCSResult{}, err
	}
	interval := sim.Time(cfg.FrameInterval.Nanoseconds())
	nominalFlits := cfg.FrameBytes * 8 / float64(cfg.FlitBits)
	vtick := sim.Time(float64(interval) / nominalFlits)
	connsPerLink := cfg.LinkBandwidthBps / (cfg.FrameBytes * 8 / cfg.FrameInterval.Seconds())
	rnd := rng.NewStream(cfg.Seed, "pcs-provision")
	conns := sw.ProvisionLoad(cfg.Load, connsPerLink, vtick, rnd)

	warmup := sim.Time(cfg.Warmup.Nanoseconds())
	stop := warmup + sim.Time(cfg.Measure.Nanoseconds())
	intervals := stats.NewIntervalTracker(warmup)
	sw.OnFrame = func(id int, at sim.Time) { intervals.Observe(id, at) }
	src := rng.NewStream(cfg.Seed, "pcs-traffic")
	for i, c := range conns {
		v := &pcs.VBRSource{
			FrameBytes: cfg.FrameBytes, FrameBytesSD: cfg.FrameBytesSD,
			Interval: interval, GroupFlits: cfg.GroupFlits,
			FlitBits: cfg.FlitBits, Stop: stop,
		}
		v.SetRand(src.Split(uint64(i)))
		pcs.StartVBR(sw, c, v, sim.Time(src.Uint64n(uint64(interval))))
	}
	eng.Run(stop)
	eng.Drain()
	return PCSResult{
		MeanDeliveryIntervalMs:   intervals.MeanMs(),
		StdDevDeliveryIntervalMs: intervals.StdDevMs(),
		FrameIntervals:           intervals.Intervals().Count(),
		Attempts:                 sw.Attempts,
		Established:              sw.Established,
		Dropped:                  sw.Dropped,
	}, nil
}

// PCSAdmission reproduces Table 3: blind (random-VC) connection setup into
// an idle switch until the established connections carry targetLoad, with
// an attempt budget of capFactor × target connections.
func PCSAdmission(ports, vcs int, connsPerLink, targetLoad float64, seed uint64) PCSResult {
	rnd := rng.NewStream(seed, "pcs-admission")
	r := pcs.SimulateAdmission(ports, vcs, connsPerLink, targetLoad, pcs.RandomVC, 6, rnd)
	return PCSResult{Attempts: r.Attempts, Established: r.Established, Dropped: r.Dropped}
}
