// Package mediaworm reproduces "Investigating QoS Support for Traffic Mixes
// with the MediaWorm Router" (Yum, Vaidya, Das, Sivasubramaniam — HPCA 2000)
// as a flit-level, cycle-accurate wormhole-router simulation library.
//
// The MediaWorm router is a conventional five-stage pipelined wormhole
// router with one modification: the bandwidth multiplexers schedule flits
// with the Virtual Clock rate-based algorithm instead of FIFO, giving soft
// QoS guarantees to VBR/CBR video streams mixed with best-effort traffic.
//
// Quick start:
//
//	cfg := mediaworm.DefaultConfig()
//	cfg.Load, cfg.RTShare = 0.8, 0.8 // 80% link load, 80:20 VBR:best-effort
//	res, err := mediaworm.Run(cfg)
//	// res.MeanDeliveryIntervalMs ≈ 33, res.StdDevDeliveryIntervalMs ≈ 0
//
// The full experiment harness that regenerates every figure and table of the
// paper lives in internal/experiments and is driven by cmd/paperfigs.
package mediaworm

import (
	"fmt"
	"math"
	"time"

	"mediaworm/internal/flit"
	"mediaworm/internal/pcs"
	"mediaworm/internal/police"
	"mediaworm/internal/rng"
	"mediaworm/internal/sched"
	"mediaworm/internal/sim"
	"mediaworm/internal/stats"
)

func schedKind(p Policy) (sched.Kind, error) {
	switch p {
	case FIFO:
		return sched.FIFO, nil
	case RoundRobin:
		return sched.RoundRobin, nil
	case VirtualClock:
		return sched.VirtualClock, nil
	case WRR:
		return sched.WRR, nil
	case DRR:
		return sched.DRR, nil
	case WF2Q:
		return sched.WF2Q, nil
	case SPWRR:
		return sched.SPWRR, nil
	}
	return 0, fmt.Errorf("mediaworm: unknown policy %q", p)
}

// schedParams maps the VC partition onto the per-VC weights and priority
// tiers the weighted disciplines consume: real-time VCs [0, rtVCs) carry
// RTWeight at tier 0, best-effort VCs carry BEWeight at tier 1.
func schedParams(cfg Config, rtVCs int) sched.Params {
	rtw, bew := cfg.Sched.RTWeight, cfg.Sched.BEWeight
	if rtw <= 0 {
		rtw = 1
	}
	if bew <= 0 {
		bew = 1
	}
	p := sched.Params{
		VCs: cfg.VCs, Quantum: cfg.Sched.Quantum,
		Weights: make([]int, cfg.VCs), Tiers: make([]int, cfg.VCs),
	}
	for v := 0; v < cfg.VCs; v++ {
		if v < rtVCs {
			p.Weights[v] = rtw
		} else {
			p.Weights[v] = bew
			p.Tiers[v] = 1
		}
	}
	return p
}

// policingParams resolves the policing defaults against the workload. The
// committed rate is CIRFactor × the source's nominal real-time injection
// rate, and the WRED thresholds scale with the message size: red (violating)
// traffic starts dropping at a two-message average backlog, yellow at four,
// and green only under severe congestion — the drop-precedence ordering the
// conformance battery checks.
func policingParams(cfg Config) (police.MeterConfig, police.DropperConfig) {
	pc := cfg.Policing
	factor := pc.CIRFactor
	if factor == 0 {
		factor = 1.2
	}
	// Default burst depths scale with the frame, the workload's natural
	// burst unit: one nominal frame's wire flits (header overhead included)
	// of committed burst, half a frame of excess.
	hdr := 1.0
	if cfg.MsgFlits > 1 {
		hdr = float64(cfg.MsgFlits) / float64(cfg.MsgFlits-1)
	}
	frameFlits := int(math.Ceil(cfg.FrameBytes * 8 / float64(cfg.FlitBits) * hdr))
	cbs, ebs := pc.CBSFlits, pc.EBSFlits
	if cbs == 0 {
		cbs = max(frameFlits, 2*cfg.MsgFlits)
	}
	if ebs == 0 {
		ebs = max(frameFlits/2, cfg.MsgFlits)
	}
	mc := police.MeterConfig{
		CIR: factor * cfg.Load * cfg.RTShare * cfg.LinkBandwidthBps / float64(cfg.FlitBits),
		CBS: cbs,
		EBS: ebs,
	}
	// WRED thresholds in frame units: red (violating) traffic starts
	// dropping at one frame of average backlog, yellow at two, green only
	// past four — per-class drop precedence by construction.
	f := max(frameFlits, 2*cfg.MsgFlits)
	dc := police.DropperConfig{
		Profiles: [police.NumColors]police.DropProfile{
			police.Green:  {MinFlits: 4 * f, MaxFlits: 8 * f, MaxProb: 0.02},
			police.Yellow: {MinFlits: 2 * f, MaxFlits: 6 * f, MaxProb: 0.5},
			police.Red:    {MinFlits: f, MaxFlits: 4 * f, MaxProb: 1.0},
		},
		WeightExp: pc.DropExp,
	}
	return mc, dc
}

func flitClass(c TrafficClass) (flit.Class, error) {
	switch c {
	case VBR:
		return flit.VBR, nil
	case CBR:
		return flit.CBR, nil
	}
	return 0, fmt.Errorf("mediaworm: unknown class %q", c)
}

// Run executes one wormhole (MediaWorm or FIFO-baseline) simulation and
// returns its measurements. Identical configs produce identical results.
// Run is NewSim followed by Finish; use the Sim API directly for stepwise
// execution and checkpoint/restore.
func Run(cfg Config) (Result, error) {
	s, err := NewSim(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Finish()
}

// saturatedBE decides Table 2's "Sat." condition from the backlog at the
// instant generation stopped: a stable queue holds only a few in-flight
// messages then, while an unstable one has accumulated a backlog that grew
// throughout the window.
func saturatedBE(injected, delivered uint64) bool {
	if injected == 0 {
		return false
	}
	backlog := float64(injected) - float64(delivered)
	return backlog > 0.05*float64(injected) && backlog > 50
}

// PCSConfig describes a pipelined-circuit-switching run (§3.5, Fig. 8):
// an 8×8 switch at 100 Mb/s with 24 VCs per channel in the paper.
type PCSConfig struct {
	Ports, VCs       int
	LinkBandwidthBps float64
	FlitBits         int
	// PipeLatency is the switch pipeline depth in cycles.
	PipeLatency int
	// Load is the provisioned input-link load; streams are established with
	// searching VC selection before traffic starts.
	Load float64
	// GroupFlits is the injection burst size (the wormhole message size
	// without the header, since PCS sends no per-message headers).
	GroupFlits               int
	FrameBytes, FrameBytesSD float64
	FrameInterval            time.Duration
	Warmup, Measure          time.Duration
	Seed                     uint64
}

// DefaultPCSConfig returns the paper's Fig. 8 PCS setup.
func DefaultPCSConfig() PCSConfig {
	return PCSConfig{
		Ports:            8,
		VCs:              24,
		LinkBandwidthBps: 100e6,
		FlitBits:         32,
		PipeLatency:      5,
		Load:             0.7,
		GroupFlits:       20,
		FrameBytes:       16666,
		FrameBytesSD:     3333,
		FrameInterval:    33 * time.Millisecond,
		Warmup:           66 * time.Millisecond,
		Measure:          330 * time.Millisecond,
		Seed:             1,
	}
}

// Scale shrinks the PCS video time base, mirroring Config.Scale.
func (c PCSConfig) Scale(f float64) PCSConfig {
	if f <= 0 || f > 1 {
		return c
	}
	c.FrameBytes *= f
	c.FrameBytesSD *= f
	c.FrameInterval = time.Duration(float64(c.FrameInterval) * f)
	c.Warmup = time.Duration(float64(c.Warmup) * f)
	c.Measure = time.Duration(float64(c.Measure) * f)
	return c
}

// RunPCS provisions connections to the target load and measures frame
// delivery jitter over the established circuits.
func RunPCS(cfg PCSConfig) (PCSResult, error) {
	if cfg.Ports < 2 || cfg.VCs < 1 || cfg.LinkBandwidthBps <= 0 || cfg.Load <= 0 {
		return PCSResult{}, fmt.Errorf("mediaworm: invalid PCS config %+v", cfg)
	}
	eng := sim.NewEngine()
	period := sim.Time(float64(cfg.FlitBits) / cfg.LinkBandwidthBps * 1e9)
	sw, err := pcs.NewSwitch(eng, pcs.Config{
		Ports: cfg.Ports, VCs: cfg.VCs, Period: period, PipeLatency: cfg.PipeLatency,
	})
	if err != nil {
		return PCSResult{}, err
	}
	interval := sim.Time(cfg.FrameInterval.Nanoseconds())
	nominalFlits := cfg.FrameBytes * 8 / float64(cfg.FlitBits)
	vtick := sim.Time(float64(interval) / nominalFlits)
	connsPerLink := cfg.LinkBandwidthBps / (cfg.FrameBytes * 8 / cfg.FrameInterval.Seconds())
	rnd := rng.NewStream(cfg.Seed, "pcs-provision")
	conns := sw.ProvisionLoad(cfg.Load, connsPerLink, vtick, rnd)

	warmup := sim.Time(cfg.Warmup.Nanoseconds())
	stop := warmup + sim.Time(cfg.Measure.Nanoseconds())
	intervals := stats.NewIntervalTracker(warmup)
	sw.OnFrame = func(id int, at sim.Time) { intervals.Observe(id, at) }
	src := rng.NewStream(cfg.Seed, "pcs-traffic")
	for i, c := range conns {
		v := &pcs.VBRSource{
			FrameBytes: cfg.FrameBytes, FrameBytesSD: cfg.FrameBytesSD,
			Interval: interval, GroupFlits: cfg.GroupFlits,
			FlitBits: cfg.FlitBits, Stop: stop,
		}
		v.SetRand(src.Split(uint64(i)))
		pcs.StartVBR(sw, c, v, sim.Time(src.Uint64n(uint64(interval))))
	}
	eng.Run(stop)
	eng.Drain()
	return PCSResult{
		MeanDeliveryIntervalMs:   intervals.MeanMs(),
		StdDevDeliveryIntervalMs: intervals.StdDevMs(),
		FrameIntervals:           intervals.Intervals().Count(),
		Attempts:                 sw.Attempts,
		Established:              sw.Established,
		Dropped:                  sw.Dropped,
	}, nil
}

// PCSAdmission reproduces Table 3: blind (random-VC) connection setup into
// an idle switch until the established connections carry targetLoad, with
// an attempt budget of capFactor × target connections.
func PCSAdmission(ports, vcs int, connsPerLink, targetLoad float64, seed uint64) PCSResult {
	rnd := rng.NewStream(seed, "pcs-admission")
	r := pcs.SimulateAdmission(ports, vcs, connsPerLink, targetLoad, pcs.RandomVC, 6, rnd)
	return PCSResult{Attempts: r.Attempts, Established: r.Established, Dropped: r.Dropped}
}
