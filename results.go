package mediaworm

import "mediaworm/internal/obs"

// Result reports one simulation run's measurements — the paper's output
// parameters (§4.1): the mean frame delivery interval d and its standard
// deviation σd for real-time traffic, and the average latency of best-effort
// traffic.
type Result struct {
	// MeanDeliveryIntervalMs is d in milliseconds: the average time between
	// deliveries of successive frames of the same stream. 33 ms with
	// σd ≈ 0 is jitter-free MPEG-2 delivery.
	MeanDeliveryIntervalMs float64
	// StdDevDeliveryIntervalMs is σd in milliseconds.
	StdDevDeliveryIntervalMs float64
	// FrameIntervals is the number of pooled interval samples.
	FrameIntervals uint64
	// Streams is the number of real-time streams generated.
	Streams int

	// BestEffort summarizes the best-effort class (zero-valued when the mix
	// has no best-effort component).
	BestEffort BestEffortResult

	// FlitsDelivered counts every flit that reached a sink (conservation
	// check surface for callers).
	FlitsDelivered uint64

	// Playout reports the end-user deadline-miss metric (zero-valued when
	// Config.PlayoutBufferFrames is 0).
	Playout PlayoutResult

	// Policing reports the injection-point meter and dropper accounting
	// (zero-valued when Config.Policing is disabled).
	Policing PolicingResult

	// Resilience reports the fault layer's accounting (zero-valued when
	// Config.Faults is disabled).
	Resilience ResilienceResult

	// Trace is the observability capture (nil unless Config.Trace.Enabled).
	// Export it with obs.WriteChromeTrace / obs.WriteMetricsCSV, or inspect
	// it with cmd/mwtrace.
	Trace *obs.Capture `json:",omitempty"`
}

// ResilienceResult reports what the fault layer did to a run and how the
// resilience mechanisms responded.
type ResilienceResult struct {
	// Enabled records that Config.Faults was armed (distinguishes a clean
	// zero-fault run from a run without the fault layer).
	Enabled bool
	// LinkDowns/LinkUps count bidirectional transit-link transitions.
	LinkDowns, LinkUps uint64
	// FlitsDropped counts flits reaped anywhere in the fabric (dead-worm
	// unraveling, corruption, unroutable kills). MessagesKilled counts the
	// messages those flits belonged to, as seen at the routers.
	FlitsDropped   uint64
	MessagesKilled uint64
	// Retransmissions, Recovered and Abandoned summarize the NI
	// retransmission layer (zero when Faults.Retransmit is off).
	Retransmissions, Recovered, Abandoned uint64
	// FramesEmitted/FramesDelivered reconcile source frames against fully
	// reassembled sink frames; DeliveredFrameRatio is their quotient — the
	// headline graceful-degradation metric.
	FramesEmitted, FramesDelivered uint64
	DeliveredFrameRatio            float64
	// Deadlocks counts watchdog trips, DeadlocksBroken recovery kills, and
	// DeadlockReport renders the first trip's blocked-VC wait-for cycle.
	Deadlocks, DeadlocksBroken int
	DeadlockReport             string
}

// PolicingResult aggregates the srTCM meter and WRED dropper accounting
// over every source NI.
type PolicingResult struct {
	// Enabled records that Config.Policing was armed.
	Enabled bool
	// MeterExceed and MeterViolate count real-time messages colored yellow
	// (burst beyond the committed bucket) and red (beyond the excess bucket)
	// by the meters.
	MeterExceed, MeterViolate uint64
	// Drops counts messages the WRED droppers discarded at injection. A
	// frame missing any message never finishes reassembly at its sink, so
	// drops surface in the delivered-frame ratio below, not as delivered
	// jitter samples.
	Drops uint64
	// FramesEmitted/FramesDelivered reconcile source frames against fully
	// reassembled sink frames; DeliveredFrameRatio is their quotient — the
	// headline cost of policing.
	FramesEmitted, FramesDelivered uint64
	DeliveredFrameRatio            float64
}

// PlayoutResult measures soft-guarantee quality as a video client sees it:
// frames that arrive after their scheduled playout instant, given a jitter
// buffer of Config.PlayoutBufferFrames frames.
type PlayoutResult struct {
	// JudgedFrames excludes each stream's anchoring first frame.
	JudgedFrames uint64
	Misses       uint64
	MissRate     float64
	// MeanLatenessMs averages how late missing frames were (0 if none).
	MeanLatenessMs float64
}

// BestEffortResult summarizes best-effort traffic.
type BestEffortResult struct {
	// MeanLatencyUs is the average message latency in microseconds
	// (injection to tail delivery), as in the paper's Table 2.
	MeanLatencyUs float64
	// MaxLatencyUs is the worst observed latency.
	MaxLatencyUs float64
	// Injected and Delivered count post-warmup messages.
	Injected, Delivered uint64
	// Saturated is true when the class could not drain its offered load —
	// the paper's "Sat." entries.
	Saturated bool
}

// PCSResult reports a PCS run: delivery statistics plus connection setup
// accounting (Table 3's columns).
type PCSResult struct {
	MeanDeliveryIntervalMs   float64
	StdDevDeliveryIntervalMs float64
	FrameIntervals           uint64

	Attempts    int
	Established int
	Dropped     int
}
