module mediaworm

go 1.22
