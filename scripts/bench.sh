#!/usr/bin/env bash
# bench.sh — run the engine and router benchmark suite and emit a
# machine-readable summary (BENCH_PR10.json by default).
#
# Dependency-free: go, git and awk only. Knobs via environment:
#
#   BENCH_OUT=path          output file             (default BENCH_PR10.json)
#   BENCHTIME=dur|Nx        -benchtime for micro-benchmarks   (default 1s)
#   SINGLE_BENCHTIME=Nx     -benchtime for BenchmarkSingleRun (default 1x;
#                           it simulates a full config per iteration)
#
# CI runs this with BENCHTIME=1x as a smoke test; numbers published in
# EXPERIMENTS.md come from the defaults on an otherwise idle machine.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR10.json}"
BENCHTIME="${BENCHTIME:-1s}"
SINGLE_BENCHTIME="${SINGLE_BENCHTIME:-1x}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() { # pkg bench-regexp benchtime
    go test "$1" -run '^$' -bench "$2" -benchtime "$3" -benchmem | tee -a "$tmp"
}

run ./internal/sim/ 'BenchmarkScheduleAndRun|BenchmarkEngine' "$BENCHTIME"
run ./internal/core/ 'BenchmarkRouter' "$BENCHTIME"
run . 'BenchmarkSingleRun$' "$SINGLE_BENCHTIME"

awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v goversion="$(go env GOVERSION)" \
    -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix if present
    iters[n] = $2; ns[n] = $3; bytes[n] = $5; allocs[n] = $7
    names[n] = name; pkgs[n] = pkg
    n++
}
END {
    printf "{\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            pkgs[i], names[i], iters[i], ns[i], bytes[i], allocs[i], (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$tmp" > "$OUT"

echo "wrote $OUT"
